"""Figure 7: introspective variants of 2-call-site-sensitivity.

Paper shape being reproduced:

* call-site-sensitivity is the worst-scaling flavor: the base 2callH does
  not terminate for 4 of the 6 benchmarks (here: bloat and xalan fall to
  the deep static call chains, hsqldb and jython to their hubs);
* 2callH-IntroA scales everywhere; 2callH-IntroB everywhere but jython
  (5-out-of-6, as in the paper);
* where the full 2callH terminates (chart, eclipse), IntroB achieves its
  *full* precision on every metric — the paper's strongest precision
  result.
"""

from _flavor_checks import (
    METRICS,
    assert_intro_a_scales_and_gains,
    assert_precision_ordering,
    assert_timeout_matrix,
)

from repro.harness import figure7


def test_fig7_experiment(benchmark):
    result = benchmark.pedantic(figure7, rounds=1, iterations=1)
    assert_timeout_matrix(
        result,
        expect_full={"bloat", "hsqldb", "jython", "xalan"},
        expect_intro_b={"jython"},
    )
    assert_precision_ordering(result)
    assert_intro_a_scales_and_gains(result)

    # IntroB == full precision where the full analysis terminates.
    for bench in ("chart", "eclipse"):
        full = result.run(bench, "2callH").precision
        intro_b = result.run(bench, "2callH-IntroB").precision
        for metric in METRICS:
            assert getattr(intro_b, metric) == getattr(full, metric), (
                bench,
                metric,
            )
    print()
    print(result.render())
