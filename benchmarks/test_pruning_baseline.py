"""Pruning baseline vs introspective analysis (the Section 5 argument).

[Liang & Naik, PLDI 2011] prune the input to the precise analysis based on
what affected a *client query*; the paper argues this complements — but
cannot replace — introspective analysis, because all-points analyses admit
no pruning.  This benchmark quantifies both halves on the hsqldb analog
(where full 2objH exceeds the budget):

* **narrow query** (one small-tier box cast): pruning keeps a small
  fraction of the program and the precise pass on the pruned program is
  *cheaper than even the introspective pass* — pruning wins when you only
  need one answer;
* **all-points query** (every cast source in the program): the relevance
  closure keeps essentially everything, the "pruned" precise pass explodes
  exactly like the full analysis — while introspective analysis still
  terminates with near-full precision, which is the paper's core claim.
"""

import pytest

from repro.baselines import keep_set, prune_and_analyze
from repro.harness import EXPERIMENT_BUDGET, scaled_heuristic_b
from repro.introspection import run_introspective


def narrow_query(facts):
    """The source variable of the first small-tier box cast."""
    for to, _type, frm, meth in facts.cast:
        if "BoxDriver0" in meth:
            return {frm}
    raise AssertionError("no box cast found")


def all_points_query(facts):
    """Every cast source variable: the all-points client."""
    return {frm for _to, _type, frm, _meth in facts.cast}


def run_comparison(cache):
    program, facts = cache.program("hsqldb")
    insens = cache.insens("hsqldb")
    narrow = prune_and_analyze(
        program,
        narrow_query(facts),
        analysis="2objH",
        facts=facts,
        insens=insens,
        max_tuples=EXPERIMENT_BUDGET,
    )
    broad = prune_and_analyze(
        program,
        all_points_query(facts),
        analysis="2objH",
        facts=facts,
        insens=insens,
        max_tuples=EXPERIMENT_BUDGET,
    )
    intro = run_introspective(
        program,
        "2objH",
        scaled_heuristic_b(),
        facts=facts,
        pass1=insens,
        max_tuples=EXPERIMENT_BUDGET,
    )
    return program, facts, insens, narrow, broad, intro


def test_pruning_vs_introspective(benchmark, cache):
    program, facts, insens, narrow, broad, intro = benchmark.pedantic(
        run_comparison, args=(cache,), rounds=1, iterations=1
    )

    # Narrow query: pruning keeps a small fraction and terminates cheaply.
    assert not narrow.timed_out
    assert narrow.kept_fraction < 0.1
    assert not intro.timed_out
    narrow_cost = narrow.result.stats().tuple_count
    intro_cost = intro.result.stats().tuple_count
    assert narrow_cost < intro_cost  # pruning wins on single queries

    # All-points query: relevance must keep every cast's flow — including
    # the pathological hub, whose rider cast makes the hub machinery
    # relevant — so the "pruned" precise pass explodes exactly like the
    # full analysis, while IntroB terminates on the whole program.
    assert broad.kept_fraction > 10 * narrow.kept_fraction
    assert broad.timed_out

    print()
    print(f"narrow query : {narrow.summary()}, {narrow_cost} tuples")
    print(f"all-points   : {broad.summary()}")
    print(
        f"introspectiveB: {intro_cost} tuples on the whole program "
        f"(full 2objH: TIMEOUT)"
    )
