"""Microbenchmarks of the engines themselves (not figure reproductions).

These are conventional multi-round pytest-benchmark measurements of the
building blocks: fact encoding, the worklist solver per flavor, the Datalog
engine's semi-naive fixpoint, and the Figure 3 model — useful for tracking
performance regressions in the substrate.
"""

import pytest

from repro import analyze, encode_program, policy_by_name
from repro.analysis.datalog_model import DatalogPointsToAnalysis
from repro.datalog import Engine, parse_program


@pytest.fixture(scope="module")
def pmd(cache):
    return cache.program("pmd")


def test_encode_program(benchmark, pmd):
    program, _ = pmd
    facts = benchmark(encode_program, program)
    assert facts.count_tuples() > 1000


@pytest.mark.parametrize("flavor", ["insens", "2objH", "2typeH", "2callH"])
def test_solver_flavor(benchmark, pmd, flavor):
    program, facts = pmd
    result = benchmark(analyze, program, flavor, facts)
    assert result.stats().tuple_count > 1000


def test_solver_tuple_throughput(benchmark, cache):
    """Throughput on the heaviest terminating configuration (bloat/2objH)."""
    program, facts = cache.program("bloat")
    result = benchmark(analyze, program, "2objH", facts)
    stats = result.stats()
    throughput = stats.tuple_count / max(stats.seconds, 1e-9)
    print(f"\n{stats.tuple_count} tuples at {throughput:,.0f} tuples/s")


def test_datalog_transitive_closure(benchmark):
    program = parse_program(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- edge(X, Y), path(Y, Z).
        """
    )
    edges = [(i, (i + 1) % 120) for i in range(120)]
    edges += [(i, (i + 7) % 120) for i in range(0, 120, 3)]

    def run():
        engine = Engine(program)
        engine.load({"edge": edges})
        engine.run()
        return engine

    engine = benchmark(run)
    assert len(engine.query("path")) == 120 * 120


def test_datalog_model_vs_solver(benchmark, cache):
    """The Figure 3 model on the Datalog engine (fidelity path) on a small
    program — orders of magnitude slower than the solver, by design."""
    program, facts = cache.program("antlr")

    def run():
        policy = policy_by_name("insens")
        return DatalogPointsToAnalysis(program, policy, facts=facts).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.reachable_methods) > 100
