"""Figure 5: introspective variants of 2-object-sensitivity.

Paper shape being reproduced:

* full 2objH times out on hsqldb and jython;
* 2objH-IntroA scales to every benchmark with real precision gains;
* 2objH-IntroB times out only on jython (the paper's one IntroB failure)
  and keeps more than two-thirds of 2objH's precision advantage wherever
  2objH itself terminates;
* precision ordering insens >= IntroA >= IntroB >= 2objH on all three
  metrics.
"""

from _flavor_checks import (
    assert_intro_a_scales_and_gains,
    assert_intro_b_keeps_most_precision,
    assert_precision_ordering,
    assert_timeout_matrix,
)

from repro.harness import figure5


def test_fig5_experiment(benchmark):
    result = benchmark.pedantic(figure5, rounds=1, iterations=1)
    assert_timeout_matrix(
        result,
        expect_full={"hsqldb", "jython"},
        expect_intro_b={"jython"},
    )
    assert_precision_ordering(result)
    assert_intro_a_scales_and_gains(result)
    assert_intro_b_keeps_most_precision(result)
    print()
    print(result.render())
