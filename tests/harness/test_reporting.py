"""Tests for the text table/bar renderers."""

from repro.harness import render_bars, render_markdown_table, render_table


class TestTable:
    def test_alignment_and_rule(self):
        text = render_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("alpha")
        # columns aligned: 'n' header starts where values start
        assert lines[0].index("n", 4) == lines[2].index("1")

    def test_none_renders_dash(self):
        text = render_table(["a"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        text = render_table(["a"], [[1.23456]])
        assert "1.23" in text and "1.2345" not in text


class TestMarkdown:
    def test_shape(self):
        md = render_markdown_table(["a", "b"], [[1, 2]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestBars:
    def test_values_scaled_to_width(self):
        text = render_bars(
            "t", {"x": [10.0, 20.0]}, ["one", "two"], width=10
        )
        lines = text.splitlines()
        bar_one = [l for l in lines if "10.00" in l][0]
        bar_two = [l for l in lines if "20.00" in l][0]
        assert bar_one.count("#") == 5
        assert bar_two.count("#") == 10

    def test_timeout_is_full_bar(self):
        text = render_bars("t", {"x": [5.0, None]}, ["a", "b"], width=8)
        timeout_line = [l for l in text.splitlines() if "TIMEOUT" in l][0]
        assert timeout_line.count("#") == 8

    def test_all_none_does_not_crash(self):
        text = render_bars("t", {"x": [None]}, ["a"])
        assert "TIMEOUT" in text

    def test_unit_suffix(self):
        text = render_bars("t", {"x": [3.0]}, ["a"], unit="s")
        assert "3.00s" in text
