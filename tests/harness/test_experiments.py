"""Tests for the per-figure experiment drivers.

Full-suite shape assertions live in the benchmark harness (benchmarks/);
here the drivers run on a reduced benchmark set so the tests stay fast
while still exercising the result plumbing and renderers end to end.
"""

import pytest

from repro.harness import figure1, figure4, figure5, main


SMALL = ("antlr", "lusearch")


@pytest.fixture(scope="module")
def fig1_small():
    return figure1(benchmarks=SMALL)


@pytest.fixture(scope="module")
def fig5_small():
    return figure5(benchmarks=SMALL)


class TestFigure1:
    def test_runs_recorded(self, fig1_small):
        assert set(fig1_small.runs) == set(SMALL)
        for bench in SMALL:
            assert set(fig1_small.runs[bench]) == {"insens", "2objH"}
            assert not fig1_small.timed_out(bench, "insens")

    def test_render_contains_table_and_bars(self, fig1_small):
        text = fig1_small.render()
        assert "antlr" in text and "insens" in text and "|" in text

    def test_markdown(self, fig1_small):
        md = fig1_small.to_markdown()
        assert md.startswith("| benchmark |")


class TestFigure4:
    def test_percentages_in_range(self):
        result = figure4(benchmarks=SMALL)
        for bench in SMALL:
            for h in ("A", "B"):
                sites, objects = result.percentages[bench][h]
                assert 0 <= sites <= 100
                assert 0 <= objects <= 100

    def test_average_row_rendered(self):
        result = figure4(benchmarks=SMALL)
        assert "average" in result.render()


class TestFlavorFigures:
    def test_variant_set(self, fig5_small):
        assert fig5_small.variants == (
            "insens",
            "2objH-IntroA",
            "2objH-IntroB",
            "2objH",
        )

    def test_all_small_benchmarks_terminate(self, fig5_small):
        for bench in SMALL:
            for variant in fig5_small.variants:
                assert not fig5_small.timed_out(bench, variant)

    def test_precision_ordering_holds(self, fig5_small):
        """insens >= IntroA >= IntroB >= full on every metric."""
        for bench in SMALL:
            reports = [
                fig5_small.run(bench, v).precision for v in fig5_small.variants
            ]
            for metric in ("polymorphic_call_sites", "casts_may_fail"):
                values = [getattr(r, metric) for r in reports]
                assert values == sorted(values, reverse=True), (bench, metric)

    def test_render_sections(self, fig5_small):
        text = fig5_small.render()
        assert "polymorphic virtual call sites" in text
        assert "reachable methods" in text
        assert "casts that may fail" in text


class TestCli:
    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert main(["not-a-fig"]) == 2
        assert "unknown experiment" in capsys.readouterr().out
