"""Packed solver vs. frozen reference solver on every bench-harness suite
(string-level relation comparison, not just tuple counts).

The tiny and small suites — the ``repro bench --quick`` scale — are
compared on every default flavor.  The medium suite is covered under the
``slow`` marker on the flagship flavor (its relation sets run to millions
of tuples; see ``docs/performance.md``)."""

import pytest

from repro.analysis.reference_solver import reference_solve
from repro.analysis.solver import solve
from repro.benchgen.generator import generate
from repro.contexts.policies import policy_by_name
from repro.facts.encoder import encode_program
from repro.fuzz.oracles import reference_relations, solver_relations
from repro.harness.bench import DEFAULT_FLAVORS, suite_names, suite_specs

QUICK_SPECS = [
    (suite, spec)
    for suite in ("tiny", "small")
    for spec in suite_specs(suite)
]
FLAVORS = ("insens",) + tuple(DEFAULT_FLAVORS)

_programs = {}


def prepared(spec):
    if spec.name not in _programs:
        program = generate(spec)
        _programs[spec.name] = (program, encode_program(program))
    return _programs[spec.name]


def assert_engines_agree(spec, flavor):
    program, facts = prepared(spec)
    policy = policy_by_name(flavor, alloc_class_of=facts.alloc_class_of)
    packed = solver_relations(solve(program, policy, facts=facts))
    reference = reference_relations(
        reference_solve(program, policy, facts=facts)
    )
    for name, p, r in zip(
        ("VARPOINTSTO", "FLDPOINTSTO", "CALLGRAPH", "REACHABLE", "THROWPOINTSTO"),
        packed,
        reference,
    ):
        assert p == r, f"{spec.name}/{flavor}: {name} differs"


@pytest.mark.parametrize("flavor", FLAVORS)
@pytest.mark.parametrize(
    "suite,spec", QUICK_SPECS, ids=[f"{s}-{sp.name}" for s, sp in QUICK_SPECS]
)
def test_engines_agree_at_quick_scale(suite, spec, flavor):
    assert_engines_agree(spec, flavor)


@pytest.mark.slow
@pytest.mark.parametrize(
    "spec", suite_specs("medium"), ids=[s.name for s in suite_specs("medium")]
)
def test_engines_agree_on_medium_suite(spec):
    assert_engines_agree(spec, "2objH")


def test_every_suite_is_covered():
    assert set(suite_names()) == {"tiny", "small", "medium"}
