"""Tests for the engine benchmark harness (solver and Datalog columns)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.reference_solver import reference_solve
from repro.analysis.solver import solve as packed_solve
from repro.benchgen.generator import generate
from repro.contexts.policies import policy_by_name
from repro.facts.encoder import encode_program
from repro.harness.bench import (
    BENCH_SCHEMA,
    DATALOG_BENCH_SCHEMA,
    DATALOG_ENGINES,
    DEFAULT_FLAVORS,
    ENGINES,
    PARALLEL_BENCH_SCHEMA,
    datalog_suite_names,
    datalog_suite_specs,
    run_datalog_suite,
    run_parallel_suite,
    run_suite,
    suite_names,
    suite_specs,
    write_report,
)

#: Every BENCH_*.json carries this provenance block so scaling numbers
#: stay interpretable across machines (docs/performance.md).
PROVENANCE_KEYS = {"python", "platform", "cpu_count", "gc_enabled"}


class TestSuiteRegistry:
    def test_known_suites(self):
        assert {"tiny", "small", "medium"} <= set(suite_names())

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            suite_specs("nope")

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError, match="repeat"):
            run_suite("tiny", repeat=0)


class TestRunSuite:
    def test_tiny_suite_report_shape(self):
        messages = []
        report = run_suite(
            "tiny", repeat=1, progress=messages.append
        )
        assert report["schema"] == BENCH_SCHEMA
        assert report["suite"] == "tiny"
        assert report["flavors"] == list(DEFAULT_FLAVORS)
        assert report["engines"] == list(ENGINES)
        specs = suite_specs("tiny")
        expected = len(specs) * len(DEFAULT_FLAVORS) * len(ENGINES)
        assert len(report["entries"]) == expected
        for entry in report["entries"]:
            assert entry["engine"] in ENGINES
            assert entry["seconds"] >= 0
            assert entry["cpu_seconds"] >= 0
            assert entry["tuples"] > 0
        # One speedup cell per (benchmark, flavor); geomean over them.
        assert len(report["speedups"]) == len(specs) * len(DEFAULT_FLAVORS)
        assert report["geomean_speedup"] > 0
        assert any("geomean" in m for m in messages)

    def test_engines_agree_on_tuples_per_cell(self):
        report = run_suite("tiny", flavors=("2objH",), repeat=1)
        by_cell = {}
        for entry in report["entries"]:
            cell = (entry["benchmark"], entry["flavor"])
            by_cell.setdefault(cell, set()).add(entry["tuples"])
        assert all(len(counts) == 1 for counts in by_cell.values())

    def test_write_report_round_trips(self, tmp_path):
        report = run_suite("tiny", flavors=("2objH",), repeat=1)
        path = tmp_path / "BENCH_solver.json"
        write_report(report, str(path))
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(report)
        )


class TestDatalogSuite:
    def test_known_suites(self):
        assert {"tiny", "small", "medium"} <= set(datalog_suite_names())

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown datalog suite"):
            datalog_suite_specs("nope")

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError, match="repeat"):
            run_datalog_suite("tiny", repeat=0)

    def test_tiny_suite_report_shape(self):
        messages = []
        report = run_datalog_suite("tiny", repeat=1, progress=messages.append)
        assert report["schema"] == DATALOG_BENCH_SCHEMA
        assert report["suite"] == "tiny"
        assert report["flavors"] == list(DEFAULT_FLAVORS)
        assert report["engines"] == list(DATALOG_ENGINES)
        specs = datalog_suite_specs("tiny")
        expected = len(specs) * len(DEFAULT_FLAVORS) * len(DATALOG_ENGINES)
        assert len(report["entries"]) == expected
        for entry in report["entries"]:
            assert entry["engine"] in DATALOG_ENGINES
            assert entry["seconds"] >= 0
            assert entry["cpu_seconds"] >= 0
            assert entry["rows"] > 0
        assert len(report["speedups"]) == len(specs) * len(DEFAULT_FLAVORS)
        assert report["geomean_speedup"] > 0
        assert any("geomean" in m for m in messages)

    def test_engines_agree_on_rows_per_cell(self):
        report = run_datalog_suite("tiny", flavors=("2objH",), repeat=1)
        by_cell = {}
        for entry in report["entries"]:
            cell = (entry["benchmark"], entry["flavor"])
            by_cell.setdefault(cell, set()).add(entry["rows"])
        assert all(len(counts) == 1 for counts in by_cell.values())

    def test_write_report_round_trips(self, tmp_path):
        report = run_datalog_suite("tiny", flavors=("2typeH",), repeat=1)
        path = tmp_path / "BENCH_datalog.json"
        write_report(report, str(path))
        assert json.loads(path.read_text()) == json.loads(json.dumps(report))


class TestProvenance:
    def test_every_report_kind_records_host_provenance(self):
        solver = run_suite("tiny", flavors=("2objH",), repeat=1)
        datalog = run_datalog_suite("tiny", flavors=("2objH",), repeat=1)
        parallel = run_parallel_suite(
            "tiny", flavors=("2objH",), repeat=1, worker_counts=(1,)
        )
        for report in (solver, datalog, parallel):
            assert PROVENANCE_KEYS <= set(report)
            assert report["cpu_count"] >= 1
            assert isinstance(report["gc_enabled"], bool)
        # The sequential suites pin workers=1; the parallel report
        # carries the swept counts instead.
        assert solver["workers"] == 1
        assert datalog["workers"] == 1
        assert parallel["worker_counts"] == [1]


class TestParallelSuite:
    def test_repeat_and_worker_counts_validated(self):
        with pytest.raises(ValueError, match="repeat"):
            run_parallel_suite("tiny", repeat=0)
        with pytest.raises(ValueError, match="worker_counts"):
            run_parallel_suite("tiny", worker_counts=())
        with pytest.raises(ValueError, match="worker_counts"):
            run_parallel_suite("tiny", worker_counts=(0,))

    def test_tiny_suite_report_shape(self):
        messages = []
        worker_counts = (1, 2)
        report = run_parallel_suite(
            "tiny",
            flavors=("2objH",),
            repeat=1,
            worker_counts=worker_counts,
            progress=messages.append,
        )
        assert report["schema"] == PARALLEL_BENCH_SCHEMA
        assert report["engines"] == ["reference", "sequential", "parallel"]
        assert report["worker_counts"] == list(worker_counts)
        assert report["min_round_nodes"] == 0
        specs = suite_specs("tiny")
        # reference + sequential + one parallel entry per worker count.
        expected = len(specs) * (2 + len(worker_counts))
        assert len(report["entries"]) == expected
        tuples = set()
        for entry in report["entries"]:
            assert entry["engine"] in ("reference", "sequential", "parallel")
            assert entry["seconds"] >= 0
            tuples.add(entry["tuples"])
            if entry["engine"] == "parallel":
                assert entry["workers"] in worker_counts
                assert entry["rounds"] >= 1
            else:
                assert entry["workers"] is None
        # Tuple equality across every engine and worker count is the
        # harness's own assertion; re-check it from the report.
        assert len(tuples) == 1
        # One speedup cell per (benchmark, flavor) per mode.
        cells = len(specs)
        assert len(report["speedups"]) == cells * (1 + len(worker_counts))
        assert len(report["speedups_vs_sequential"]) == cells * len(
            worker_counts
        )
        assert set(report["geomean_speedups"]) == {
            "sequential",
            "workers=1",
            "workers=2",
        }
        assert any("geomean" in m for m in messages)


class TestEngineEquivalence:
    """The packed solver is a representation change, not a semantic one:
    both engines must derive identical points-to sets at string level."""

    @pytest.mark.parametrize("flavor", DEFAULT_FLAVORS)
    def test_string_level_points_to_identical(self, flavor):
        (spec,) = suite_specs("tiny")
        program = generate(spec)
        facts = encode_program(program)
        policy = policy_by_name(flavor, alloc_class_of=facts.alloc_class_of)
        packed = packed_solve(program, policy, facts=facts)
        reference = reference_solve(program, policy, facts=facts)
        assert packed.tuple_count == reference.tuple_count

        def var_pts_packed(raw):
            out = {}
            for (var_i, ctx_i), node in raw.var_nodes.items():
                key = (raw.vars.value(var_i), raw.ctxs.value(ctx_i))
                out[key] = {
                    (raw.heaps.value(h), raw.hctxs.value(hc))
                    for h, hc in raw.iter_pts(node)
                }
            return out

        def var_pts_reference(raw):
            out = {}
            for (var_i, ctx_i), node in raw.var_nodes.items():
                key = (raw.vars.value(var_i), raw.ctxs.value(ctx_i))
                out[key] = {
                    (raw.heaps.value(h), raw.hctxs.value(hc))
                    for h, hc in raw.pts[node]
                }
            return out

        assert var_pts_packed(packed) == var_pts_reference(reference)

        def call_graph(raw):
            return {
                (
                    raw.invos.value(invo),
                    raw.ctxs.value(cctx),
                    raw.meths.value(meth),
                    raw.ctxs.value(mctx),
                )
                for invo, cctx, meth, mctx in raw.call_graph
            }

        assert call_graph(packed) == call_graph(reference)

        def reachable(raw):
            return {
                (raw.meths.value(m), raw.ctxs.value(c))
                for m, c in raw.reachable
            }

        assert reachable(packed) == reachable(reference)


class TestWriteReportAtomicity:
    """A killed bench run must never leave a truncated ``BENCH_*.json``.

    ``write_report`` lands reports via temp file + ``os.replace``; these
    tests simulate the kill arriving mid-write (during the fsync, after
    bytes have been written to the temp file) and assert the previous
    report survives byte-for-byte with no temp debris left behind.
    """

    OLD = {"schema": BENCH_SCHEMA, "suite": "tiny", "speedups": {"a/f": 1.0}}

    def test_kill_mid_write_preserves_previous_report(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "BENCH_solver.json"
        write_report(self.OLD, str(path))
        before = path.read_bytes()

        def killed(_fd):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.utils.os.fsync", killed)
        new = {"schema": BENCH_SCHEMA, "suite": "tiny", "pad": "x" * 65536}
        with pytest.raises(KeyboardInterrupt):
            write_report(new, str(path))
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_solver.json"]

    def test_kill_on_first_write_leaves_nothing(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH_solver.json"

        def killed(_fd):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.utils.os.fsync", killed)
        with pytest.raises(KeyboardInterrupt):
            write_report(self.OLD, str(path))
        assert list(tmp_path.iterdir()) == []

    def test_uninterrupted_write_replaces_the_report(self, tmp_path):
        path = tmp_path / "BENCH_solver.json"
        write_report(self.OLD, str(path))
        new = dict(self.OLD, suite="small")
        write_report(new, str(path))
        assert json.loads(path.read_text()) == new
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_solver.json"]


class TestDemandSuite:
    def test_repeat_and_queries_validated(self):
        from repro.harness.bench import run_demand_suite

        with pytest.raises(ValueError, match="repeat"):
            run_demand_suite("tiny", repeat=0)
        with pytest.raises(ValueError, match="queries"):
            run_demand_suite("tiny", queries=0)

    def test_tiny_suite_report_shape(self):
        from repro.harness.bench import DEMAND_BENCH_SCHEMA, run_demand_suite

        messages = []
        flavors = ("2objH", "2typeH")
        queries = 2
        report = run_demand_suite(
            "tiny",
            flavors=flavors,
            repeat=1,
            queries=queries,
            progress=messages.append,
        )
        assert report["schema"] == DEMAND_BENCH_SCHEMA
        assert report["engines"] == ["packed-full", "packed-slice"]
        assert PROVENANCE_KEYS <= set(report)
        assert report["workers"] == 1
        specs = suite_specs("tiny")
        assert set(report["warmup_seconds"]) == {s.name for s in specs}
        # One entry per (benchmark, flavor, sampled variable) ...
        assert len(report["entries"]) == len(specs) * len(flavors) * queries
        for entry in report["entries"]:
            assert entry["speedup"] > 0
            assert entry["query_seconds"] > 0
            assert entry["full_seconds"] > 0
            assert 0.0 < entry["footprint"] <= 1.0
        # ... and two speedup cells (query / batch) per (benchmark, flavor).
        assert len(report["speedups"]) == len(specs) * len(flavors) * 2
        assert report["geomean_speedup"] > 0
        assert 0.0 < report["median_footprint"] <= 1.0
        assert any("geomean" in m for m in messages)

    def test_report_adapts_into_warehouse_cells(self):
        from repro.harness.bench import run_demand_suite
        from repro.warehouse import cells_of, receipt_from_bench_report

        report = run_demand_suite(
            "tiny", flavors=("2objH",), repeat=1, queries=1
        )
        receipt = receipt_from_bench_report(report)
        assert receipt["kind"] == "bench-demand"
        cells = cells_of(receipt)
        assert len(cells) == len(report["speedups"])
        assert {c["variant"] for c in cells} == {"query", "batch"}
        assert all(c["unit"] == "speedup" for c in cells)

    def test_write_report_round_trips(self, tmp_path):
        from repro.harness.bench import run_demand_suite

        report = run_demand_suite(
            "tiny", flavors=("2objH",), repeat=1, queries=1
        )
        path = tmp_path / "BENCH_demand.json"
        write_report(report, str(path))
        assert json.loads(path.read_text()) == report
