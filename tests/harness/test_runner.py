"""Tests for the budgeted run wrapper."""

import pytest

from repro import encode_program
from repro.harness import run_analysis, run_introspective_analysis
from repro.harness.runner import scaled_heuristic_a, scaled_heuristic_b
from repro.introspection import RefineEverything
from tests.conftest import build_box_program


@pytest.fixture(scope="module")
def setup():
    program = build_box_program()
    return program, encode_program(program)


class TestRunAnalysis:
    def test_successful_run(self, setup):
        program, facts = setup
        out = run_analysis(program, "2objH", facts=facts, benchmark="boxes")
        assert not out.timed_out
        assert out.benchmark == "boxes"
        assert out.analysis == "2objH"
        assert out.stats is not None and out.tuples > 0
        assert out.precision is not None
        assert out.seconds >= 0
        assert "t" in out.cell()

    def test_timeout_run(self, setup):
        program, facts = setup
        out = run_analysis(program, "2objH", facts=facts, max_tuples=5)
        assert out.timed_out
        assert out.stats is None and out.precision is None
        assert out.tuples is None
        assert out.cell() == "TIMEOUT"

    def test_precision_can_be_skipped(self, setup):
        program, facts = setup
        out = run_analysis(program, "insens", facts=facts, with_precision=False)
        assert out.precision is None and out.stats is not None


class TestRunIntrospective:
    def test_successful_run(self, setup):
        program, facts = setup
        insens = run_analysis(program, "insens", facts=facts)
        out = run_introspective_analysis(
            program,
            "2objH",
            scaled_heuristic_a(),
            facts=facts,
            pass1=insens.result,
        )
        assert out.analysis == "2objH-IntroA"
        assert not out.timed_out
        assert out.introspective is not None
        assert out.introspective.refinement_stats.total_objects > 0

    def test_timeout_reported_not_raised(self, setup):
        program, facts = setup
        insens = run_analysis(program, "insens", facts=facts)
        out = run_introspective_analysis(
            program,
            "2objH",
            RefineEverything(),
            facts=facts,
            pass1=insens.result,
            max_tuples=5,
        )
        assert out.timed_out and out.precision is None


class TestScaledHeuristics:
    def test_constants(self):
        a = scaled_heuristic_a()
        assert (a.K, a.L, a.M) == (40, 40, 10)
        b = scaled_heuristic_b()
        assert (b.P, b.Q) == (150, 250)
