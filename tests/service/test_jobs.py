"""Job model, spec validation, and the priority queue."""

from __future__ import annotations

import threading

import pytest

from repro.service.jobs import Job, JobQueue, JobSpec, JobState, TERMINAL_STATES


def spec(**kwargs):
    kwargs.setdefault("benchmark", "antlr")
    kwargs.setdefault("analysis", "insens")
    return JobSpec(**kwargs)


class TestJobSpecValidation:
    def test_benchmark_or_source_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec()

    def test_benchmark_and_source_rejected(self):
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec(benchmark="antlr", source="class X { }")

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            JobSpec(benchmark="nope")

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ValueError):
            spec(analysis="definitely-not-an-analysis")

    def test_bad_heuristic_label_rejected(self):
        with pytest.raises(ValueError, match="unknown heuristic"):
            spec(introspective="C")

    def test_bad_heuristic_constants_rejected(self):
        with pytest.raises(ValueError, match="3 constants"):
            spec(introspective="A", heuristic_constants="1,2")
        with pytest.raises(ValueError, match="integers"):
            spec(introspective="B", heuristic_constants="x,y")

    def test_constants_without_introspective_rejected(self):
        with pytest.raises(ValueError, match="requires 'introspective'"):
            spec(heuristic_constants="1,2,3")

    def test_nonpositive_budgets_rejected(self):
        with pytest.raises(ValueError, match="max_tuples"):
            spec(max_tuples=0)
        with pytest.raises(ValueError, match="max_seconds"):
            spec(max_seconds=-1.0)

    def test_from_payload_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown job fields"):
            JobSpec.from_payload({"benchmark": "antlr", "bogus": 1})

    def test_from_payload_rejects_bad_types(self):
        with pytest.raises(ValueError, match="must be a string"):
            JobSpec.from_payload({"benchmark": 42})
        with pytest.raises(ValueError, match="must be an integer"):
            JobSpec.from_payload({"benchmark": "antlr", "max_tuples": "10"})
        with pytest.raises(ValueError, match="'show' must be a list"):
            JobSpec.from_payload({"benchmark": "antlr", "show": 7})

    def test_payload_roundtrip(self):
        s = spec(
            introspective="A",
            heuristic_constants="4,5,6",
            max_tuples=1000,
            priority=3,
            show=("Main.main/0/x",),
        )
        assert JobSpec.from_payload(s.to_payload()) == s


class TestJobLifecycle:
    def test_snapshot_shape(self):
        job = Job(spec=spec())
        snap = job.snapshot()
        assert snap["state"] == JobState.QUEUED
        assert snap["spec"]["benchmark"] == "antlr"
        assert not job.terminal

    def test_terminal_states(self):
        assert TERMINAL_STATES == {
            JobState.DONE, JobState.TIMEOUT, JobState.ERROR, JobState.CANCELLED
        }


class TestJobQueue:
    def test_priority_order(self):
        q = JobQueue()
        low = Job(spec=spec(priority=0))
        high = Job(spec=spec(priority=10))
        mid = Job(spec=spec(priority=5))
        for j in (low, high, mid):
            q.put(j)
        assert [q.pop(0.1) for _ in range(3)] == [high, mid, low]

    def test_fifo_within_priority(self):
        q = JobQueue()
        first, second = Job(spec=spec()), Job(spec=spec())
        q.put(first)
        q.put(second)
        assert q.pop(0.1) is first
        assert q.pop(0.1) is second

    def test_pop_timeout_returns_none(self):
        assert JobQueue().pop(timeout=0.01) is None

    def test_cancel_queued_job_is_skipped(self):
        q = JobQueue()
        a, b = Job(spec=spec()), Job(spec=spec())
        q.put(a)
        q.put(b)
        assert q.cancel(a)
        assert a.state == JobState.CANCELLED
        assert a.finished_at is not None
        assert q.pop(0.1) is b

    def test_cancel_is_not_idempotent_once_terminal(self):
        q = JobQueue()
        a = Job(spec=spec())
        q.put(a)
        assert q.cancel(a)
        assert not q.cancel(a)

    def test_cancel_running_job_refused(self):
        q = JobQueue()
        a = Job(spec=spec())
        q.put(a)
        popped = q.pop(0.1)
        popped.state = JobState.RUNNING
        assert not q.cancel(popped)

    def test_depth_ignores_cancelled(self):
        q = JobQueue()
        a, b = Job(spec=spec()), Job(spec=spec())
        q.put(a)
        q.put(b)
        assert q.depth() == 2
        q.cancel(a)
        assert q.depth() == 1

    def test_put_wakes_blocked_pop(self):
        q = JobQueue()
        job = Job(spec=spec())
        got = []
        t = threading.Thread(target=lambda: got.append(q.pop(timeout=5.0)))
        t.start()
        q.put(job)
        t.join(timeout=5.0)
        assert got == [job]


class TestQueueCompaction:
    """Lazy cancellation must not let stale heap entries pile up: once the
    cancelled entries outnumber the live ones, the heap is compacted."""

    def test_mass_cancellation_shrinks_the_heap(self):
        q = JobQueue()
        jobs = [Job(spec=spec(priority=i % 7)) for i in range(1100)]
        for job in jobs:
            q.put(job)
        survivors = jobs[1000:]
        for job in jobs[:1000]:
            assert q.cancel(job)
        # The 1000 cancelled entries were swept out by compaction; the
        # heap holds (about) the 100 live ones, not 1100.
        assert len(q._heap) <= 2 * len(survivors)
        assert q.depth() == len(survivors)

    def test_compaction_preserves_priority_and_fifo_order(self):
        q = JobQueue()
        jobs = [Job(spec=spec(priority=i % 5)) for i in range(300)]
        for job in jobs:
            q.put(job)
        cancelled = [job for i, job in enumerate(jobs) if i % 3 != 0]
        survivors = [job for i, job in enumerate(jobs) if i % 3 == 0]
        for job in cancelled:
            assert q.cancel(job)
        # Survivors pop in priority order, FIFO within a priority — the
        # exact order they would have popped in had nothing been
        # cancelled (compaction keeps the original heap keys).
        expected = sorted(
            survivors, key=lambda j: (-j.spec.priority, jobs.index(j))
        )
        popped = [q.pop(0.1) for _ in range(len(survivors))]
        assert popped == expected
        assert q.pop(0.01) is None

    def test_stale_counter_resets_after_pop_sweep(self):
        q = JobQueue()
        a, b, c = Job(spec=spec()), Job(spec=spec()), Job(spec=spec())
        for j in (a, b, c):
            q.put(j)
        # One cancellation of three entries: below the compaction
        # threshold, so the stale entry is swept lazily by pop.
        assert q.cancel(a)
        assert len(q._heap) == 3
        assert q.pop(0.1) is b
        assert q._stale == 0


class TestJobDurations:
    def test_durations_come_from_the_monotonic_clock(self, monkeypatch):
        # Regression: durations used to be derivable only from the
        # wall-clock *_at stamps, so an NTP step between submission and
        # finish produced negative or wildly wrong timings.  Simulate a
        # clock jumping one hour backwards mid-job: wall-clock display
        # fields show the jump, the duration properties must not.
        import time as time_module

        real_time = time_module.time
        job = Job(spec=spec())
        job.mark_started()
        monkeypatch.setattr(
            "repro.service.jobs.time.time",
            lambda: real_time() - 3600.0,
        )
        job.mark_finished()
        assert job.finished_at < job.started_at  # the wall clock jumped...
        assert job.run_seconds is not None and job.run_seconds >= 0
        assert job.total_seconds >= job.run_seconds
        assert job.queue_seconds is not None and job.queue_seconds >= 0

    def test_durations_are_none_until_the_transitions_happen(self):
        job = Job(spec=spec())
        assert job.queue_seconds is None
        assert job.run_seconds is None
        assert job.total_seconds is None
        job.mark_started()
        assert job.queue_seconds is not None
        assert job.run_seconds is None
        job.mark_finished()
        assert job.run_seconds is not None

    def test_cancelled_job_has_queue_time_but_no_run_time(self):
        q = JobQueue()
        job = Job(spec=spec())
        q.put(job)
        assert q.cancel(job) is True
        assert job.queue_seconds is not None and job.queue_seconds >= 0
        assert job.run_seconds is None
        assert job.total_seconds is not None

    def test_snapshot_exposes_rounded_durations(self):
        job = Job(spec=spec())
        job.mark_started()
        job.mark_finished()
        snap = job.snapshot()
        for key in ("queue_seconds", "run_seconds", "total_seconds"):
            assert snap[key] is not None and snap[key] >= 0
        assert snap["created_at"] is not None
