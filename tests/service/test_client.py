"""ServiceClient behavior: error wrapping and poll backoff."""

from __future__ import annotations

import pytest

from repro.service.client import ServiceClient, ServiceError


class TestTransportErrors:
    def test_connection_refused_raises_service_error(self):
        # Regression: urllib.error.URLError used to escape _request raw,
        # forcing every caller to catch urllib internals alongside
        # ServiceError.  Port 9 (discard) refuses connections.
        client = ServiceClient("http://127.0.0.1:9", request_timeout=2.0)
        with pytest.raises(ServiceError) as exc:
            client.healthz()
        assert exc.value.status == 0
        assert "transport error" in str(exc.value)
        assert exc.value.payload["error"]
        assert exc.value.retry_after is None

    def test_http_error_still_carries_status_and_payload(self):
        from repro.service.api import local_service

        with local_service(workers=0) as url:
            with pytest.raises(ServiceError) as exc:
                ServiceClient(url).status("deadbeef")
            assert exc.value.status == 404
            assert "no such job" in exc.value.payload["error"]


class TestWaitBackoff:
    def _instrument(self, monkeypatch, states):
        """A client whose polls and sleeps are scripted/recorded."""
        client = ServiceClient("http://unused.invalid")
        snapshots = iter(states)
        monkeypatch.setattr(
            client, "status", lambda job_id: {"state": next(snapshots)}
        )
        sleeps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", sleeps.append
        )
        # Pin jitter to the top of its range for determinism.
        monkeypatch.setattr(
            "repro.service.client.random.uniform", lambda a, b: b
        )
        return client, sleeps

    def test_interval_doubles_up_to_the_cap(self, monkeypatch):
        client, sleeps = self._instrument(
            monkeypatch, ["queued"] * 8 + ["done"]
        )
        snapshot = client.wait("job", timeout=600.0, interval=0.05)
        assert snapshot["state"] == "done"
        # 0.05 doubling per poll, capped at max_interval=2.0 — not the
        # old fixed 50ms hammering.
        assert sleeps == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2.0, 2.0]

    def test_jitter_stays_within_the_window(self, monkeypatch):
        client, sleeps = self._instrument(
            monkeypatch, ["queued"] * 5 + ["done"]
        )
        recorded = []
        monkeypatch.setattr(
            "repro.service.client.random.uniform",
            lambda a, b: recorded.append((a, b)) or b,
        )
        client.wait("job", timeout=600.0, interval=0.05)
        lows = {low for low, _high in recorded}
        highs = [high for _low, high in recorded]
        assert lows == {0.05}  # jitter never drops below the base interval
        assert highs == sorted(highs)  # the window only widens

    def test_timeout_still_raises(self, monkeypatch):
        client, _sleeps = self._instrument(monkeypatch, ["queued"] * 50)
        with pytest.raises(TimeoutError):
            client.wait("job", timeout=0.0)
