"""HTTP tests for the demand-query route (`POST /queries`) and the
`--max-sessions` cap plumbing."""

import json
import urllib.error
import urllib.request

import pytest

from repro import analyze, encode_program
from repro.frontend import parse_source
from repro.service import AnalysisService, ServiceClient, local_service

SOURCE = """
class Box {
    field v;
    method set(x) { this.v = x; }
    method get()  { r = this.v; return r; }
}
class Main {
    static method main() {
        b1 = new Box();  b2 = new Box();
        a = new Box();   b = new Box();
        b1.set(a);       b2.set(b);
        g1 = b1.get();   g2 = b2.get();
    }
}
"""
VARS = ["Main.main/0/g1", "Main.main/0/g2"]


def _req(url, method="GET", payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestQueriesRoute:
    def test_answers_equal_whole_program_projection(self):
        program = parse_source(SOURCE)
        facts = encode_program(program)
        whole = analyze(program, "2objH", facts=facts)
        with local_service(workers=0) as url:
            status, body = _req(
                f"{url}/queries",
                "POST",
                {"source": SOURCE, "vars": VARS, "flavor": "2objH"},
            )
            assert status == 200
            assert body["flavor"] == "2objH"
            assert body["cached"] is False
            assert body["facts_digest"] == facts.digest()
            assert [a["var"] for a in body["answers"]] == VARS
            for answer in body["answers"]:
                assert answer["points_to"] == sorted(
                    whole.points_to(answer["var"])
                )
                assert 0.0 < answer["footprint"] <= 1.0

    def test_identical_batch_replays_from_cache(self):
        payload = {"source": SOURCE, "vars": VARS, "flavor": "2typeH"}
        with local_service(workers=0) as url:
            _, first = _req(f"{url}/queries", "POST", payload)
            assert first["cached"] is False
            _, second = _req(f"{url}/queries", "POST", payload)
            assert second["cached"] is True
            assert second["answers"] == first["answers"]

    def test_blown_budget_is_an_error_slot_not_a_failure(self):
        with local_service(workers=0) as url:
            status, body = _req(
                f"{url}/queries",
                "POST",
                {
                    "source": SOURCE,
                    "vars": VARS,
                    "flavor": "2objH",
                    "max_tuples": 1,
                },
            )
            assert status == 200
            for slot in body["answers"]:
                assert set(slot["error"]) == {"reason", "tuples", "seconds"}
            # ... and the timeouts are visible on /metrics.
            client = ServiceClient(url)
            text = client.metrics()
            assert 'repro_service_queries_total{state="timeout"}' in text

    @pytest.mark.parametrize(
        "payload",
        [
            {"vars": VARS, "flavor": "2objH"},  # neither program selector
            {"source": SOURCE, "benchmark": "antlr", "vars": VARS},  # both
            {"source": SOURCE, "vars": []},  # empty batch
            {"source": SOURCE, "vars": VARS, "flavor": "introspective-C"},
            {"source": SOURCE, "vars": VARS, "nope": 1},  # unknown field
            {"benchmark": "no-such-bench", "vars": VARS},
        ],
        ids=[
            "no-program",
            "both-programs",
            "no-vars",
            "bad-flavor",
            "unknown-field",
            "bad-benchmark",
        ],
    )
    def test_malformed_payloads_are_400(self, payload):
        with local_service(workers=0) as url:
            status, body = _req(f"{url}/queries", "POST", payload)
            assert status == 400
            assert "error" in body

    def test_query_metrics_are_exposed(self):
        with local_service(workers=0) as url:
            _req(
                f"{url}/queries",
                "POST",
                {"source": SOURCE, "vars": VARS, "flavor": "insens"},
            )
            text = ServiceClient(url).metrics()
            assert 'repro_service_queries_total{state="done"}' in text
            assert "repro_service_query_seconds" in text
            assert "repro_service_query_slice_vars" in text

    def test_engine_cache_reuses_warm_insensitive_pass(self):
        """Two uncached batches over the same program share one engine:
        the second answers from the engine's memo tiers."""
        service = AnalysisService(workers=0)
        try:
            first = service.run_queries(
                {"source": SOURCE, "vars": [VARS[0]], "flavor": "2objH"}
            )
            second = service.run_queries(
                {"source": SOURCE, "vars": VARS, "flavor": "2objH"}
            )
            assert second["cached"] is False  # different cache key ...
            assert (
                second["slice_memo_entries"] >= first["slice_memo_entries"]
            )  # ... but the same warm engine underneath
        finally:
            service.stop()


class TestMaxSessionsPlumbing:
    def test_session_cap_reaches_http_as_409(self):
        with local_service(workers=0, max_sessions=1) as url:
            status, body = _req(
                f"{url}/sessions",
                "POST",
                {"source": SOURCE, "analysis": "insens"},
            )
            assert status == 201
            status, body = _req(
                f"{url}/sessions",
                "POST",
                {"source": SOURCE, "analysis": "insens"},
            )
            assert status == 409
            assert "error" in body

    def test_default_cap_is_sixteen(self):
        from repro.service.sessions import SessionStore

        assert AnalysisService(workers=0).sessions.max_sessions == 16
        assert SessionStore().max_sessions == 16
