"""Edit sessions over HTTP: store semantics plus the /sessions routes."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.service.api import local_service
from repro.service.sessions import SessionError, SessionStore

SOURCE = """
class Item { }
class Box {
    field v;
    method set(x) { this.v = x; }
    method get()  { r = this.v; return r; }
}
class Main {
    static method main() {
        b = new Box();
        o = new Item();
        b.set(o);
        g = b.get();
    }
}
"""


# ----------------------------------------------------------------------
# Store unit tests (no HTTP)
# ----------------------------------------------------------------------
class TestSessionStore:
    def test_create_validates_payload(self):
        store = SessionStore()
        with pytest.raises(SessionError, match="JSON object"):
            store.create([])
        with pytest.raises(SessionError, match="unknown session fields"):
            store.create({"source": SOURCE, "bogus": 1})
        with pytest.raises(SessionError, match="exactly one"):
            store.create({})
        with pytest.raises(SessionError, match="exactly one"):
            store.create({"benchmark": "antlr", "source": SOURCE})
        with pytest.raises(SessionError, match="unknown engine"):
            store.create({"source": SOURCE, "engine": "gpu"})
        with pytest.raises(SessionError, match="positive integer"):
            store.create({"source": SOURCE, "max_tuples": 0})
        with pytest.raises(SessionError, match="unknown benchmark"):
            store.create({"benchmark": "nope"})
        with pytest.raises(SessionError):
            store.create({"source": SOURCE, "analysis": "3dwave"})

    def test_capacity_limit_is_a_409(self):
        store = SessionStore(max_sessions=1)
        store.create({"source": SOURCE, "analysis": "insens"})
        with pytest.raises(SessionError) as exc:
            store.create({"source": SOURCE, "analysis": "insens"})
        assert exc.value.status == 409

    def test_lifecycle_and_edit_rollback(self):
        store = SessionStore()
        record = store.create({"source": SOURCE, "analysis": "insens"})
        assert store.get(record.id) is record
        assert len(store) == 1

        out = store.apply_edits(
            record.id,
            {"edits": [{"op": "add-class", "name": "ZNew"}]},
        )
        assert out["session_id"] == record.id
        assert out["edits_applied"] == 1
        assert out["tier"] in ("noop", "monotonic", "strata", "full")
        assert "result_delta" in out and "timing" in out

        # A rejected script must leave the session unchanged...
        with pytest.raises(SessionError, match="session unchanged"):
            store.apply_edits(
                record.id,
                {"edits": [{"op": "add-class", "name": "ZNew"}]},
            )
        assert record.session.edits_applied == 1
        assert record.session.check_against_scratch() == []

        # ... and junk payloads are 400s, unknown sessions 404s.
        with pytest.raises(SessionError, match="'edits'"):
            store.apply_edits(record.id, {"nope": []})
        with pytest.raises(SessionError) as exc:
            store.apply_edits("ffffffffffff", {"edits": []})
        assert exc.value.status == 404

        assert store.delete(record.id) is True
        assert store.delete(record.id) is False
        assert len(store) == 0


# ----------------------------------------------------------------------
# HTTP routes
# ----------------------------------------------------------------------
def _req(url, method="GET", payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestSessionRoutes:
    @pytest.fixture(scope="class")
    def base(self):
        with local_service(workers=0) as url:
            yield url

    def test_full_session_lifecycle(self, base):
        status, created = _req(
            base + "/sessions",
            "POST",
            {"source": SOURCE, "analysis": "2objH"},
        )
        assert status == 201, created
        sid = created["id"]
        assert created["engine"] == "solver"
        assert created["edits_url"] == f"/sessions/{sid}/edits"
        assert created["initial_solve_seconds"] >= 0

        status, listed = _req(base + "/sessions")
        assert status == 200
        assert sid in {s["id"] for s in listed["sessions"]}

        status, outcome = _req(
            base + f"/sessions/{sid}/edits",
            "POST",
            {
                "edits": [
                    {
                        "op": "insert-instruction",
                        "method_id": "Main.main/0",
                        "instruction": {
                            "op": "alloc",
                            "target": "zv",
                            "class": "Box",
                        },
                    }
                ]
            },
        )
        assert status == 200, outcome
        assert outcome["tier"] == "monotonic"
        assert outcome["result_delta"]["added"]
        assert outcome["timing"]["solve_seconds"] >= 0
        assert outcome["edits_applied"] == 1

        status, snap = _req(base + f"/sessions/{sid}")
        assert status == 200
        assert snap["edits_applied"] == 1
        assert snap["tier_counts"].get("monotonic") == 1

        status, health = _req(base + "/healthz")
        assert health["sessions"] >= 1

        status, deleted = _req(base + f"/sessions/{sid}", "DELETE")
        assert status == 200 and deleted["deleted"] is True
        status, _ = _req(base + f"/sessions/{sid}")
        assert status == 404

    def test_error_statuses(self, base):
        status, err = _req(base + "/sessions", "POST", {"bogus": True})
        assert status == 400 and "error" in err
        status, err = _req(
            base + "/sessions/ffffffffffff/edits", "POST", {"edits": []}
        )
        assert status == 404
        status, err = _req(base + "/sessions/ffffffffffff", "DELETE")
        assert status == 404

    def test_rejected_edit_keeps_session(self, base):
        _, created = _req(
            base + "/sessions", "POST", {"source": SOURCE, "analysis": "insens"}
        )
        sid = created["id"]
        status, err = _req(
            base + f"/sessions/{sid}/edits",
            "POST",
            {"edits": [{"op": "remove-class", "name": "NoSuchClass"}]},
        )
        assert status == 400
        assert "session unchanged" in err["error"]
        status, snap = _req(base + f"/sessions/{sid}")
        assert status == 200 and snap["edits_applied"] == 0
        _req(base + f"/sessions/{sid}", "DELETE")
