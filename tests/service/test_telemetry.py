"""Counters, gauges, histograms, summaries, and the /metrics rendering."""

from __future__ import annotations

import time

import pytest

from repro.service.telemetry import Registry


class TestCounter:
    def test_inc_and_total(self):
        c = Registry().counter("jobs_total", "Jobs.")
        c.inc(state="done")
        c.inc(state="done")
        c.inc(state="error")
        assert c.value(state="done") == 2
        assert c.value(state="error") == 1
        assert c.total() == 3

    def test_render_with_and_without_labels(self):
        reg = Registry()
        c = reg.counter("hits_total", "Hits.")
        text = reg.render()
        assert "# TYPE hits_total counter" in text
        assert "hits_total 0" in text
        c.inc(tier="memory")
        assert 'hits_total{tier="memory"} 1' in reg.render()


class TestGauge:
    def test_set_inc_dec(self):
        g = Registry().gauge("depth", "Depth.")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value() == 3

    def test_render(self):
        reg = Registry()
        reg.gauge("depth", "Depth.").set(7)
        assert "depth 7" in reg.render()


class TestHistogram:
    def test_cumulative_buckets(self):
        reg = Registry()
        h = reg.histogram("lat", "Latency.", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        text = reg.render()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="10"} 4' in text
        assert 'lat_bucket{le="+Inf"} 5' in text
        assert "lat_count 5" in text
        assert h.count == 5

    def test_boundary_lands_in_its_bucket(self):
        h = Registry().histogram("lat", "L.", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert 'lat_bucket{le="1"} 1' in h.render()


class TestSummary:
    def test_sum_count_and_render(self):
        reg = Registry()
        s = reg.summary("solver_tuples", "Tuples per job.")
        s.observe(100)
        s.observe(250)
        assert s.count == 2
        assert s.sum == 350
        text = reg.render()
        assert "# TYPE solver_tuples summary" in text
        assert "solver_tuples_sum 350" in text
        assert "solver_tuples_count 2" in text

    def test_empty_summary_renders_zeroes(self):
        reg = Registry()
        reg.summary("s", "S.")
        text = reg.render()
        assert "s_sum 0" in text
        assert "s_count 0" in text


class TestSolverThroughputMetrics:
    """The service records solver seconds + tuples per executed job."""

    def _wait(self, job, timeout=60.0):
        deadline = time.time() + timeout
        while job.state in ("queued", "running"):
            assert time.time() < deadline, "job did not finish in time"
            time.sleep(0.02)
        return job

    def test_solver_metrics_recorded_once_per_solve(self):
        from repro.service import AnalysisService, JobSpec

        service = AnalysisService(workers=0)
        service.start()
        try:
            job = self._wait(
                service.submit(JobSpec(benchmark="antlr", analysis="insens"))
            )
            assert job.state == "done"
            tuples = job.result["stats"]["tuple_count"]
            assert service._m_solver_tuples.count == 1
            assert service._m_solver_tuples.sum == tuples
            assert service._m_solver_seconds.count == 1
            assert service._m_solver_tps.value() > 0

            text = service.telemetry.render()
            assert "# TYPE repro_service_solver_seconds summary" in text
            assert f"repro_service_solver_tuples_sum {tuples}" in text
            assert "repro_service_solver_tuples_per_second" in text

            # A cache hit replays the payload without solving: the
            # per-solve summaries must not move.
            again = self._wait(
                service.submit(JobSpec(benchmark="antlr", analysis="insens"))
            )
            assert again.cached is True
            assert service._m_solver_tuples.count == 1
            assert service._m_solver_seconds.count == 1
        finally:
            service.stop()


class TestRegistry:
    def test_duplicate_names_rejected(self):
        reg = Registry()
        reg.counter("x", "X.")
        with pytest.raises(ValueError, match="duplicate"):
            reg.gauge("x", "X again.")

    def test_render_order_and_help(self):
        reg = Registry()
        reg.counter("first_total", "First.")
        reg.gauge("second", "Second.")
        text = reg.render()
        assert text.index("first_total") < text.index("second")
        assert "# HELP first_total First." in text
