"""Counters, gauges, histograms, and the /metrics rendering."""

from __future__ import annotations

import pytest

from repro.service.telemetry import Registry


class TestCounter:
    def test_inc_and_total(self):
        c = Registry().counter("jobs_total", "Jobs.")
        c.inc(state="done")
        c.inc(state="done")
        c.inc(state="error")
        assert c.value(state="done") == 2
        assert c.value(state="error") == 1
        assert c.total() == 3

    def test_render_with_and_without_labels(self):
        reg = Registry()
        c = reg.counter("hits_total", "Hits.")
        text = reg.render()
        assert "# TYPE hits_total counter" in text
        assert "hits_total 0" in text
        c.inc(tier="memory")
        assert 'hits_total{tier="memory"} 1' in reg.render()


class TestGauge:
    def test_set_inc_dec(self):
        g = Registry().gauge("depth", "Depth.")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value() == 3

    def test_render(self):
        reg = Registry()
        reg.gauge("depth", "Depth.").set(7)
        assert "depth 7" in reg.render()


class TestHistogram:
    def test_cumulative_buckets(self):
        reg = Registry()
        h = reg.histogram("lat", "Latency.", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        text = reg.render()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="10"} 4' in text
        assert 'lat_bucket{le="+Inf"} 5' in text
        assert "lat_count 5" in text
        assert h.count == 5

    def test_boundary_lands_in_its_bucket(self):
        h = Registry().histogram("lat", "L.", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert 'lat_bucket{le="1"} 1' in h.render()


class TestRegistry:
    def test_duplicate_names_rejected(self):
        reg = Registry()
        reg.counter("x", "X.")
        with pytest.raises(ValueError, match="duplicate"):
            reg.gauge("x", "X again.")

    def test_render_order_and_help(self):
        reg = Registry()
        reg.counter("first_total", "First.")
        reg.gauge("second", "Second.")
        text = reg.render()
        assert text.index("first_total") < text.index("second")
        assert "# HELP first_total First." in text
