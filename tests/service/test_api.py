"""End-to-end tests: HTTP API, cache hits via /metrics, harness wiring."""

from __future__ import annotations

import pytest

from repro.harness.service_runner import run_matrix_via_service, run_via_service
from repro.service import AnalysisService, JobSpec, ServiceClient, ServiceError
from repro.service.api import local_service


@pytest.fixture(scope="class")
def client():
    """One inline-worker service per test class, on an ephemeral port."""
    with local_service(workers=0) as url:
        yield ServiceClient(url)


class TestEndToEnd:
    def test_submit_poll_result_then_cache_hit(self, client, tmp_path):
        job_id = client.submit(
            benchmark="antlr", analysis="insens", show=["?nope"]
        )
        snapshot = client.wait(job_id, timeout=60)
        assert snapshot["state"] == "done"

        res = client.result(job_id)
        assert res["cached"] is False
        payload = res["result"]
        assert payload["analysis"] == "insens"
        assert payload["stats"]["tuple_count"] > 0
        assert payload["points_to"] == {"?nope": []}

        # The second identical submission is answered from the cache.
        again = client.submit(
            benchmark="antlr", analysis="insens", show=["?nope"]
        )
        client.wait(again, timeout=60)
        assert client.result(again)["cached"] is True
        assert client.metric_value("repro_service_cache_hits_total") >= 1
        assert client.metric_value("repro_service_cache_misses_total") >= 1

    def test_tiny_budget_times_out_without_killing_the_pool(self, client):
        job_id = client.submit(
            benchmark="antlr", analysis="2objH", max_tuples=10
        )
        assert client.wait(job_id, timeout=60)["state"] == "timeout"
        payload = client.result(job_id)["result"]
        assert "tuple budget" in payload["error"]

        # The pool survived: the next job still completes.
        after = client.submit(benchmark="lusearch", analysis="insens")
        assert client.wait(after, timeout=60)["state"] == "done"

    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 0
        assert "queue_depth" in health and "uptime_seconds" in health

    def test_metrics_exposition_shape(self, client):
        text = client.metrics()
        assert "# TYPE repro_service_jobs_total counter" in text
        assert "# TYPE repro_service_solve_seconds histogram" in text
        assert "repro_service_workers 0" in text

    def test_job_listing(self, client):
        client.wait(client.submit(benchmark="antlr", analysis="insens"), 60)
        listing = client._request("GET", "/jobs")
        assert any(j["state"] == "done" for j in listing["jobs"])

    def test_error_job_surfaces_message(self, client):
        job_id = client.submit(source="class {", analysis="insens")
        assert client.wait(job_id, timeout=60)["state"] == "error"
        assert client.result(job_id)["result"]["error"]


class TestHTTPErrors:
    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.status("deadbeef")
        assert exc.value.status == 404

    def test_bad_submission_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.submit(benchmark="antlr", bogus_field=1)
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client.submit(benchmark="not-a-benchmark")
        assert exc.value.status == 400

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/nope")
        assert exc.value.status == 404

    def test_result_of_unfinished_job_409(self):
        # A service whose dispatcher is never started: jobs stay queued,
        # so /result must answer 409 and DELETE must cancel.
        from repro.service.api import create_server
        import threading

        service = AnalysisService(workers=0)
        server = create_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            job_id = client.submit(benchmark="antlr", analysis="insens")
            with pytest.raises(ServiceError) as exc:
                client.result(job_id)
            assert exc.value.status == 409
            # And a queued job can be cancelled over HTTP.
            assert client.cancel(job_id)["state"] == "cancelled"
            with pytest.raises(ServiceError) as exc:
                client.cancel(job_id)
            assert exc.value.status == 409
        finally:
            server.shutdown()
            server.server_close()
            service.stop()


class TestCachedTimeouts:
    def test_identical_budget_trip_is_cached(self):
        with local_service(workers=0) as url:
            client = ServiceClient(url)
            first = client.submit(
                benchmark="antlr", analysis="2objH", max_tuples=10
            )
            assert client.wait(first, 60)["state"] == "timeout"
            second = client.submit(
                benchmark="antlr", analysis="2objH", max_tuples=10
            )
            assert client.wait(second, 60)["state"] == "timeout"
            assert client.result(second)["cached"] is True


class TestDiskCacheAcrossRestarts:
    def test_second_service_instance_hits_disk(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with local_service(workers=0, cache_dir=cache_dir) as url:
            client = ServiceClient(url)
            client.wait(client.submit(benchmark="antlr", analysis="insens"), 60)
        with local_service(workers=0, cache_dir=cache_dir) as url:
            client = ServiceClient(url)
            job_id = client.submit(benchmark="antlr", analysis="insens")
            client.wait(job_id, 60)
            assert client.result(job_id)["cached"] is True
            assert 'tier="disk"' in client.metrics()


class TestPriorityScheduling:
    def test_high_priority_overtakes(self):
        """With the dispatcher stopped, order is decided purely by priority."""
        service = AnalysisService(workers=0)
        low = service.submit(JobSpec(benchmark="antlr", analysis="insens"))
        high = service.submit(
            JobSpec(benchmark="lusearch", analysis="insens", priority=5)
        )
        assert service.queue.pop(0.1) is high
        assert service.queue.pop(0.1) is low
        service.stop()


class TestHarnessWiring:
    def test_run_via_service_outcome(self):
        with local_service(workers=0) as url:
            client = ServiceClient(url)
            outcome = run_via_service(
                client, "antlr", "insens", max_tuples=200_000
            )
            assert outcome.benchmark == "antlr"
            assert outcome.analysis == "insens"
            assert not outcome.timed_out
            assert outcome.stats.tuple_count > 0
            assert outcome.precision.reachable_methods > 0
            assert "t" in outcome.cell()

    def test_matrix_exercises_cache(self):
        with local_service(workers=0) as url:
            client = ServiceClient(url)
            first = run_matrix_via_service(
                client, ["antlr"], ["insens"], max_tuples=200_000
            )
            second = run_matrix_via_service(
                client, ["antlr"], ["insens"], max_tuples=200_000
            )
            assert first[0].stats.tuple_count == second[0].stats.tuple_count
            assert client.metric_value("repro_service_cache_hits_total") == 1

    def test_timeout_surfaces_as_run_outcome(self):
        with local_service(workers=0) as url:
            client = ServiceClient(url)
            outcome = run_via_service(client, "antlr", "2objH", max_tuples=10)
            assert outcome.timed_out
            assert outcome.cell() == "TIMEOUT"


class TestProcessPool:
    """One real multi-process smoke test (everything else runs inline)."""

    def test_jobs_run_in_worker_processes(self):
        with local_service(workers=2) as url:
            client = ServiceClient(url)
            ids = [
                client.submit(benchmark="antlr", analysis="insens"),
                client.submit(benchmark="lusearch", analysis="insens"),
            ]
            states = [client.wait(i, timeout=120)["state"] for i in ids]
            assert states == ["done", "done"]
