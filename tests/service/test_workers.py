"""The worker execution function and pass-1 reuse (inline, no processes)."""

from __future__ import annotations

import pytest

from repro.service.jobs import JobSpec, JobState
from repro.service.workers import _PASS1_CACHE, WorkerPool, execute_job

BAD_SOURCE = "class { this is not the surface language"


def payload(**kwargs):
    kwargs.setdefault("benchmark", "antlr")
    kwargs.setdefault("analysis", "insens")
    return JobSpec(**kwargs).to_payload()


@pytest.fixture(autouse=True)
def clean_pass1_cache():
    _PASS1_CACHE.clear()
    yield
    _PASS1_CACHE.clear()


class TestExecuteJob:
    def test_done_payload(self):
        out = execute_job(payload(show=["?missing"]))
        assert out["state"] == JobState.DONE
        assert out["analysis"] == "insens"
        assert out["stats"]["tuple_count"] > 0
        assert out["precision"]["reachable_methods"] > 0
        assert out["points_to"] == {"?missing": []}
        assert len(out["facts_digest"]) == 64
        assert out["solve_seconds"] >= 0

    def test_inline_source(self):
        out = execute_job(
            JobSpec(
                source="""
                class Main { static method main() { x = new Main(); } }
                """,
                analysis="insens",
                show=("Main.main/0/x",),
            ).to_payload()
        )
        assert out["state"] == JobState.DONE
        assert out["points_to"]["Main.main/0/x"] == ["Main.main/0/new Main/0"]

    def test_budget_trip_is_timeout_not_raise(self):
        out = execute_job(payload(analysis="2objH", max_tuples=10))
        assert out["state"] == JobState.TIMEOUT
        assert out["stats"] is None
        assert "tuple budget" in out["error"]

    def test_parse_error_is_error_state(self):
        out = execute_job({"source": BAD_SOURCE, "analysis": "insens"})
        assert out["state"] == JobState.ERROR
        assert out["error"]
        assert "traceback" in out

    def test_introspective_done_with_refinement(self):
        out = execute_job(payload(analysis="2objH", introspective="A"))
        assert out["state"] == JobState.DONE
        assert out["analysis"] == "2objH-IntroA"
        assert out["heuristic"].startswith("Heuristic A")
        assert out["refinement"]["total_call_sites"] > 0
        assert out["stats"] is not None

    def test_introspective_second_pass_timeout(self):
        # Budget large enough for the insensitive pass 1 on hsqldb but far
        # too small for unrefined-everywhere pass 2 with RefineEverything
        # analog: use a heuristic that refines everything (huge constants).
        out = execute_job(
            payload(
                benchmark="hsqldb",
                analysis="2objH",
                introspective="B",
                heuristic_constants="1000000,1000000",
                max_tuples=150_000,
            )
        )
        assert out["state"] == JobState.TIMEOUT
        assert out["refinement"] is not None


class TestPass1Reuse:
    def test_reused_across_introspective_jobs_on_same_program(self):
        first = execute_job(payload(analysis="2objH", introspective="A"))
        second = execute_job(payload(analysis="2objH", introspective="B"))
        assert first["pass1_reused"] is False
        assert second["pass1_reused"] is True
        assert first["facts_digest"] == second["facts_digest"]

    def test_not_reused_across_programs(self):
        execute_job(payload(analysis="2objH", introspective="A"))
        other = execute_job(
            payload(benchmark="lusearch", analysis="2objH", introspective="A")
        )
        assert other["pass1_reused"] is False

    def test_cache_is_bounded(self):
        from repro.service import workers

        for i in range(workers._PASS1_LIMIT + 2):
            source = (
                "class Main { static method main() { "
                + " ".join(f"x{j} = new Main();" for j in range(i + 1))
                + " } }"
            )
            execute_job(
                JobSpec(
                    source=source, analysis="2objH", introspective="A"
                ).to_payload()
            )
        assert len(_PASS1_CACHE) <= workers._PASS1_LIMIT


class TestWorkerPool:
    def test_inline_pool_runs_synchronously(self):
        pool = WorkerPool(workers=0)
        future = pool.submit(payload())
        assert future.done()
        assert future.result()["state"] == JobState.DONE
        assert pool.slots == 1
        pool.shutdown()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=-1)


class TestStagesAndTrace:
    def test_stages_always_recorded(self):
        out = execute_job(payload())
        assert set(out["stages"]) >= {"build", "encode", "solve"}
        assert all(v >= 0 for v in out["stages"].values())
        assert "trace" not in out  # opt-in only

    def test_error_payload_still_carries_stages(self):
        out = execute_job({"source": BAD_SOURCE, "analysis": "insens"})
        assert out["state"] == JobState.ERROR
        assert isinstance(out["stages"], dict)

    def test_trace_opt_in_payload(self):
        out = execute_job(payload(trace=True))
        assert out["state"] == JobState.DONE
        trace = out["trace"]
        events = trace["chrome"]["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        # The job-level span plus the full frontend-to-clients pipeline.
        assert "job.execute" in names
        assert {"job.build", "facts.encode", "analysis.solve",
                "clients.precision"} <= names
        assert trace["summary"]["job.execute"]["count"] == 1
        # The payload must survive the process-pool JSON boundary.
        import json

        json.dumps(out)

    def test_traced_introspective_job_has_intro_spans(self):
        out = execute_job(payload(analysis="2objH", introspective="A", trace=True))
        assert out["state"] == JobState.DONE
        names = {
            e["name"]
            for e in out["trace"]["chrome"]["traceEvents"]
            if e["ph"] == "X"
        }
        assert {"intro.pass1", "intro.metrics", "intro.heuristic",
                "intro.pass2"} <= names

    def test_traced_result_equals_untraced(self):
        untraced = execute_job(payload(analysis="2objH"))
        _PASS1_CACHE.clear()
        traced = execute_job(payload(analysis="2objH", trace=True))

        def content(stats):
            return {k: v for k, v in stats.items() if k != "seconds"}

        assert content(traced["stats"]) == content(untraced["stats"])
        assert traced["precision"] == untraced["precision"]

    def test_reused_pass1_records_no_pass1_span(self):
        execute_job(payload(analysis="2objH", introspective="A"))
        out = execute_job(
            payload(analysis="2objH", introspective="B", trace=True)
        )
        assert out["pass1_reused"] is True
        names = {
            e["name"]
            for e in out["trace"]["chrome"]["traceEvents"]
            if e["ph"] == "X"
        }
        # A cache hit costs nothing, so no intro.pass1 span is recorded
        # and no budget is drawn down for it.
        assert "intro.pass1" not in names
        assert "intro.pass2" in names
