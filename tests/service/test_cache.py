"""The content-addressed result cache: keying, LRU tier, disk tier."""

from __future__ import annotations

from repro import encode_program
from repro.service.cache import ResultCache, cache_key
from repro.service.jobs import JobSpec
from repro.service.telemetry import Registry
from tests.conftest import build_tiny_program

DIGEST = "ab" * 32


def spec(**kwargs):
    kwargs.setdefault("benchmark", "antlr")
    kwargs.setdefault("analysis", "insens")
    return JobSpec(**kwargs)


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key(DIGEST, spec()) == cache_key(DIGEST, spec())

    def test_depends_on_facts_digest(self):
        real = encode_program(build_tiny_program()).digest()
        assert cache_key(real, spec()) != cache_key(DIGEST, spec())

    def test_depends_on_analysis_and_budget(self):
        base = cache_key(DIGEST, spec())
        assert cache_key(DIGEST, spec(analysis="2objH")) != base
        assert cache_key(DIGEST, spec(max_tuples=10)) != base
        assert cache_key(DIGEST, spec(max_seconds=1.0)) != base

    def test_depends_on_heuristic(self):
        a = cache_key(DIGEST, spec(introspective="A"))
        b = cache_key(DIGEST, spec(introspective="B"))
        assert a != b
        assert cache_key(
            DIGEST, spec(introspective="A", heuristic_constants="1,2,3")
        ) != a

    def test_constants_are_normalized(self):
        """Whitespace and explicit defaults key identically."""
        assert cache_key(
            DIGEST, spec(introspective="B", heuristic_constants="5,7")
        ) == cache_key(
            DIGEST, spec(introspective="B", heuristic_constants=" 5 , 7 ")
        )
        assert cache_key(DIGEST, spec(introspective="A")) == cache_key(
            DIGEST, spec(introspective="A", heuristic_constants="100,100,200")
        )

    def test_trace_flag_is_part_of_the_key(self):
        # Traced payloads carry an extra section; they must never be
        # served to (or seeded from) untraced requests.
        assert cache_key(DIGEST, spec(trace=True)) != cache_key(DIGEST, spec())

    def test_priority_is_not_part_of_the_key(self):
        assert cache_key(DIGEST, spec(priority=9)) == cache_key(DIGEST, spec())


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", {"state": "done"})
        assert cache.get("k") == {"state": "done"}

    def test_returned_payload_is_a_copy(self):
        cache = ResultCache(capacity=4)
        cache.put("k", {"state": "done"})
        cache.get("k")["state"] = "mutated"
        assert cache.get("k")["state"] == "done"

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", {"v": 3})
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}
        assert len(cache) == 2

    def test_hit_miss_counters(self):
        reg = Registry()
        hits = reg.counter("hits", "h")
        misses = reg.counter("misses", "m")
        cache = ResultCache(capacity=2, hits=hits, misses=misses)
        cache.get("nope")
        cache.put("k", {})
        cache.get("k")
        assert misses.total() == 1
        assert hits.value(tier="memory") == 1


class TestDiskTier:
    def test_survives_a_new_instance(self, tmp_path):
        first = ResultCache(capacity=2, cache_dir=str(tmp_path))
        first.put("deadbeef", {"state": "done", "answer": 42})
        fresh = ResultCache(capacity=2, cache_dir=str(tmp_path))
        assert fresh.get("deadbeef") == {"state": "done", "answer": 42}

    def test_disk_hit_counts_and_promotes(self, tmp_path):
        reg = Registry()
        hits = reg.counter("hits", "h")
        seeded = ResultCache(capacity=2, cache_dir=str(tmp_path))
        seeded.put("k", {"v": 1})
        fresh = ResultCache(capacity=2, cache_dir=str(tmp_path), hits=hits)
        fresh.get("k")
        fresh.get("k")
        assert hits.value(tier="disk") == 1
        assert hits.value(tier="memory") == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(capacity=2, cache_dir=str(tmp_path))
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad") is None

    def test_no_disk_dir_means_memory_only(self, tmp_path):
        cache = ResultCache(capacity=1)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})  # evicts a; nothing on disk to recover
        assert cache.get("a") is None

    def test_clear_drops_the_disk_tier_too(self, tmp_path):
        # Regression: clear() used to empty only the memory tier, so the
        # next get() resurrected every "cleared" entry from its JSON file.
        cache = ResultCache(capacity=2, cache_dir=str(tmp_path))
        cache.put("k1", {"v": 1})
        cache.put("k2", {"v": 2})
        assert list(tmp_path.glob("*.json"))
        cache.clear()
        assert len(cache) == 0
        assert not list(tmp_path.glob("*.json"))
        assert cache.get("k1") is None
        assert cache.get("k2") is None

    def test_clear_without_disk_dir(self):
        cache = ResultCache(capacity=2)
        cache.put("k", {"v": 1})
        cache.clear()
        assert cache.get("k") is None

    def test_failed_disk_write_leaves_no_tmp_debris(self, tmp_path, monkeypatch):
        # Regression: put() used to mkstemp and then leak the temp file
        # whenever the dump or the rename failed, littering the cache
        # directory with orphaned *.tmp files forever.
        cache = ResultCache(capacity=4, cache_dir=str(tmp_path))

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.service.cache.os.replace", exploding_replace)
        cache.put("k1", {"v": 1})
        monkeypatch.undo()
        # An unserializable payload fails inside json.dump instead.
        cache.put("k2", {"v": object()})
        assert not list(tmp_path.glob("*.tmp"))
        # The memory tier still holds both entries (disk is best-effort).
        assert cache.get("k1") == {"v": 1}

    def test_concurrent_clear_does_not_resurrect_from_disk(
        self, tmp_path, monkeypatch
    ):
        # Regression: get() promoted a disk read into the memory tier
        # without noticing that clear() had run in between, resurrecting
        # an entry the caller had just invalidated.  The interleaving:
        # get() misses memory, reads the JSON file, then — before the
        # promotion — clear() wipes both tiers.
        cache = ResultCache(capacity=4, cache_dir=str(tmp_path))
        cache.put("k", {"v": 1})
        # Force the next get to take the disk path.
        with cache._lock:
            cache._memory.clear()

        original = cache._load_disk

        def load_then_lose_the_race(key):
            payload = original(key)
            cache.clear()  # the concurrent clear lands mid-get
            return payload

        monkeypatch.setattr(cache, "_load_disk", load_then_lose_the_race)
        # The in-flight get may still return the value it already read …
        assert cache.get("k") == {"v": 1}
        monkeypatch.undo()
        # … but it must NOT have re-populated the cleared memory tier.
        assert len(cache) == 0
        assert cache.get("k") is None
