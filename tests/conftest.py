"""Shared fixtures: small reference programs used across the test suite."""

from __future__ import annotations

import pytest

from repro import ProgramBuilder, encode_program
from repro.ir.program import Program


def build_tiny_program() -> Program:
    """Alloc/move/call/return flows, one virtual dispatch, one cast."""
    b = ProgramBuilder()
    b.klass("A", fields=["f"])
    b.klass("B", super_name="A")
    with b.method("A", "id", ["p"]) as m:
        m.ret("p")
    with b.method("B", "id", ["p"]) as m:
        m.alloc("q", "B")
        m.ret("q")
    with b.method("Main", "main", [], static=True) as m:
        m.alloc("a", "A")
        m.alloc("b", "B")
        m.vcall("a", "id", ["b"], target="r1")
        m.vcall("b", "id", ["a"], target="r2")
        m.store("a", "f", "b")
        m.load("x", "a", "f")
        m.cast("y", "x", "B")
    return b.build(entry="Main.main/0")


def build_box_program(boxes: int = 3) -> Program:
    """The classic container-precision example: per-box item separation.

    A context-insensitive analysis conflates all boxes (every ``get``
    returns every item); object/call-site/type-sensitivity keep them apart.
    """
    b = ProgramBuilder()
    b.klass("Item", abstract=True)
    b.klass("Box", fields=["v"])
    with b.method("Box", "set", ["x"]) as m:
        m.store("this", "v", "x")
    with b.method("Box", "get", []) as m:
        m.load("r", "this", "v")
        m.ret("r")
    for k in range(boxes):
        b.klass(f"Item{k}", super_name="Item")
        with b.method(f"BoxFactory{k}", "make", [], static=True) as m:
            m.alloc("bx", "Box")
            m.ret("bx")
    with b.method("Main", "main", [], static=True) as m:
        for k in range(boxes):
            m.scall(f"BoxFactory{k}", "make", [], target=f"box{k}")
            m.alloc(f"item{k}", f"Item{k}")
            m.vcall(f"box{k}", "set", [f"item{k}"])
            m.vcall(f"box{k}", "get", [], target=f"g{k}")
            m.cast(f"c{k}", f"g{k}", f"Item{k}")
    return b.build(entry="Main.main/0")


def build_kitchen_sink_program() -> Program:
    """Exercises every instruction kind: static/special calls, static
    fields, arrays, casts, interfaces, multiple returns."""
    b = ProgramBuilder()
    b.interface("Speaker")
    b.klass("Animal", interfaces=["Speaker"], fields=["voice"], abstract=True)
    b.klass("Dog", super_name="Animal")
    b.klass("Cat", super_name="Animal")
    b.klass("Sound")
    b.klass("Globals", static_fields=["shared"])
    with b.method("Animal", "init", ["v"]) as m:
        m.store("this", "voice", "v")
    with b.method("Dog", "speak", []) as m:
        m.load("r", "this", "voice")
        m.ret("r")
    with b.method("Cat", "speak", []) as m:
        m.alloc("meow", "Sound")
        m.ret("meow")
    with b.method("Util", "pick", ["a", "b"], static=True) as m:
        m.ret("a")
        m.ret("b")
    with b.method("Main", "main", [], static=True) as m:
        m.alloc("d", "Dog")
        m.alloc("c", "Cat")
        m.alloc("s", "Sound")
        m.special_call("d", "Animal", "init", ["s"])
        m.vcall("d", "speak", [], target="sd")
        m.vcall("c", "speak", [], target="sc")
        m.scall("Util", "pick", ["sd", "sc"], target="p")
        m.static_store("Globals", "shared", "p")
        m.static_load("g", "Globals", "shared")
        m.alloc("arr", "java.lang.Object")
        m.array_store("arr", "g")
        m.array_load("elem", "arr")
        m.cast("snd", "elem", "Sound")
        m.move("cp", "snd")
    return b.build(entry="Main.main/0")


@pytest.fixture
def tiny_program() -> Program:
    return build_tiny_program()


@pytest.fixture
def box_program() -> Program:
    return build_box_program()


@pytest.fixture
def kitchen_sink_program() -> Program:
    return build_kitchen_sink_program()


@pytest.fixture
def tiny_facts(tiny_program):
    return encode_program(tiny_program)
