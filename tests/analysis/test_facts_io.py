"""Tests for the Doop-style facts/solution serialization."""

import pytest

from repro import analyze, encode_program
from repro.analysis.datalog_model import DatalogPointsToAnalysis
from repro.contexts import InsensitivePolicy
from repro.facts.io import load_facts, save_facts, save_solution
from repro.facts.schema import INPUT_RELATIONS


class TestFactsRoundTrip:
    def test_all_relations_written(self, tiny_program, tmp_path):
        facts = encode_program(tiny_program)
        written = save_facts(facts, tmp_path)
        names = {p.stem for p in written}
        assert names == set(INPUT_RELATIONS) - {"SITETOREFINE", "OBJECTTOREFINE"}
        assert all(p.suffix == ".facts" for p in written)

    def test_roundtrip_identical(self, tiny_program, tmp_path):
        facts = encode_program(tiny_program)
        save_facts(facts, tmp_path)
        loaded = load_facts(tmp_path)
        original = facts.as_relation_dict()
        for name, rows in original.items():
            assert sorted(map(tuple, rows)) == sorted(loaded[name]), name

    def test_int_columns_restored(self, tiny_program, tmp_path):
        facts = encode_program(tiny_program)
        save_facts(facts, tmp_path)
        loaded = load_facts(tmp_path)
        assert all(isinstance(row[1], int) for row in loaded["FORMALARG"])

    def test_model_runs_from_reloaded_facts(self, tiny_program, tmp_path):
        """The paper's save-the-first-run-database workflow: the Datalog
        model over reloaded facts equals the model over fresh facts."""
        facts = encode_program(tiny_program)
        save_facts(facts, tmp_path)
        loaded = load_facts(tmp_path)

        fresh = DatalogPointsToAnalysis(tiny_program, InsensitivePolicy(), facts=facts)
        fresh_result = fresh.run()

        reloaded = DatalogPointsToAnalysis(
            tiny_program, InsensitivePolicy(), facts=facts
        )
        # replace the engine's EDB with the reloaded tuples
        from repro.analysis.datalog_model import build_rules
        from repro.datalog.engine import Engine

        engine = Engine(build_rules(InsensitivePolicy(), InsensitivePolicy()))
        engine.load(loaded)
        engine.run()
        assert engine.query("VARPOINTSTO") == set(fresh_result.var_points_to)
        assert engine.query("REACHABLE") == set(fresh_result.reachable)

    def test_unknown_relation_file_rejected(self, tmp_path):
        (tmp_path / "BOGUS.facts").write_text("a\tb\n")
        with pytest.raises(ValueError, match="unknown relation"):
            load_facts(tmp_path)

    def test_bad_arity_rejected(self, tmp_path):
        (tmp_path / "MOVE.facts").write_text("only-one-column\n")
        with pytest.raises(ValueError, match="expected 2 columns"):
            load_facts(tmp_path)


class TestSolutionDump:
    def test_solution_files(self, tiny_program, tmp_path):
        facts = encode_program(tiny_program)
        result = analyze(tiny_program, "2objH", facts=facts)
        written = save_solution(result, tmp_path)
        names = {p.stem for p in written}
        assert names == {
            "VARPOINTSTO",
            "FLDPOINTSTO",
            "CALLGRAPH",
            "REACHABLE",
            "THROWPOINTSTO",
        }
        vpt = (tmp_path / "VARPOINTSTO.csv").read_text().splitlines()
        assert len(vpt) == result.stats().var_pts_tuples

    def test_context_rendering(self, tiny_program, tmp_path):
        facts = encode_program(tiny_program)
        result = analyze(tiny_program, "2objH", facts=facts)
        save_solution(result, tmp_path)
        reach = (tmp_path / "REACHABLE.csv").read_text()
        # the star context renders as empty; object contexts as heap names
        assert "Main.main/0\t\n" in reach
        assert "Main.main/0/new A/0" in reach

    def test_deterministic_output(self, tiny_program, tmp_path):
        facts = encode_program(tiny_program)
        result = analyze(tiny_program, "insens", facts=facts)
        save_solution(result, tmp_path / "a")
        save_solution(result, tmp_path / "b")
        for name in ("VARPOINTSTO", "CALLGRAPH"):
            assert (tmp_path / "a" / f"{name}.csv").read_text() == (
                tmp_path / "b" / f"{name}.csv"
            ).read_text()
