"""Tests for context-sensitivity behavior: where precision appears and how
the flavors differ — on the classic container example."""

import pytest

from repro import analyze
from tests.conftest import build_box_program


ALL_SENSITIVE = ["2objH", "2callH", "2typeH", "1objH", "2objH+hybrid"]


class TestBoxSeparation:
    """The conftest box program: three boxes, each holding its own item."""

    @pytest.fixture(scope="class")
    def program(self):
        return build_box_program(boxes=3)

    def test_insensitive_conflates(self, program):
        r = analyze(program, "insens")
        for k in range(3):
            assert len(r.points_to(f"Main.main/0/g{k}")) == 3

    @pytest.mark.parametrize("analysis", ALL_SENSITIVE)
    def test_sensitive_separates(self, program, analysis):
        r = analyze(program, analysis)
        for k in range(3):
            assert r.points_to(f"Main.main/0/g{k}") == {
                f"Main.main/0/new Item{k}/{k}"
            }

    @pytest.mark.parametrize("analysis", ALL_SENSITIVE + ["insens"])
    def test_sensitive_subset_of_insensitive(self, program, analysis):
        """Soundness-style sanity: refined projections never exceed the
        insensitive ones on this program family."""
        insens = analyze(program, "insens").var_points_to
        refined = analyze(program, analysis).var_points_to
        for var, heaps in refined.items():
            assert heaps <= insens.get(var, set()), var

    def test_context_counts_grow_with_sensitivity(self, program):
        insens = analyze(program, "insens")
        obj = analyze(program, "2objH")
        assert len(insens.raw.ctxs) == 1
        assert len(obj.raw.ctxs) > 1


class TestContextsInResults:
    def test_insensitive_contexts_are_star(self):
        r = analyze(build_box_program(1), "insens")
        for _var, ctx, _heap, hctx in r.iter_var_points_to():
            assert ctx == ()
            assert hctx == ()

    def test_object_contexts_are_allocation_sites(self):
        r = analyze(build_box_program(2), "2objH")
        set_contexts = {
            ctx
            for meth, ctx in r.iter_reachable()
            if meth == "Box.set/1" and ctx != ()
        }
        # Box.set runs once per box object: context = the box's alloc site.
        assert {ctx[0] for ctx in set_contexts} == {
            "BoxFactory0.make/0/new Box/0",
            "BoxFactory1.make/0/new Box/0",
        }

    def test_call_site_contexts_are_invocation_sites(self):
        r = analyze(build_box_program(2), "2callH")
        set_contexts = {
            ctx for meth, ctx in r.iter_reachable() if meth == "Box.set/1"
        }
        assert all("invo" in ctx[0] for ctx in set_contexts)

    def test_type_contexts_are_class_names(self):
        r = analyze(build_box_program(2), "2typeH")
        set_contexts = {
            ctx
            for meth, ctx in r.iter_reachable()
            if meth == "Box.set/1" and ctx != ()
        }
        assert {ctx[0] for ctx in set_contexts} == {
            "BoxFactory0",
            "BoxFactory1",
        }


class TestHeapContext:
    def test_heap_context_qualifies_allocations(self):
        """Under 2objH, an object allocated inside a method running in
        context (c,) gets heap context (c,) — RECORD = ctx truncation."""
        from repro import ProgramBuilder

        b = ProgramBuilder()
        b.klass("Factory")
        b.klass("Product")
        with b.method("Factory", "make", []) as m:
            m.alloc("p", "Product")
            m.ret("p")
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("f1", "Factory")
            m.alloc("f2", "Factory")
            m.vcall("f1", "make", [], target="p1")
            m.vcall("f2", "make", [], target="p2")
        p = b.build(entry="Main.main/0")
        r = analyze(p, "2objH")
        hctxs = {
            (heap, hctx)
            for var, _ctx, heap, hctx in r.iter_var_points_to()
            if var in ("Main.main/0/p1", "Main.main/0/p2")
        }
        assert hctxs == {
            ("Factory.make/0/new Product/0", ("Main.main/0/new Factory/0",)),
            ("Factory.make/0/new Product/0", ("Main.main/0/new Factory/1",)),
        }
