"""Tests for the worklist solver's core semantics, flow by flow."""

import pytest

from repro import ProgramBuilder, analyze


def pts(result, var):
    return set(result.points_to(var))


def build_and_run(setup, analysis="insens"):
    b = ProgramBuilder()
    setup(b)
    p = b.build(entry="Main.main/0")
    return analyze(p, analysis), p


class TestAllocAndMove:
    def test_alloc_flows_to_target(self):
        def setup(b):
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("x", "java.lang.Object")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/x") == {"Main.main/0/new java.lang.Object/0"}

    def test_move_copies(self):
        def setup(b):
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("x", "java.lang.Object")
                m.move("y", "x")
                m.move("z", "y")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/z") == {"Main.main/0/new java.lang.Object/0"}

    def test_move_is_flow_insensitive(self):
        """y = x before x is assigned still sees x's objects (Section 2:
        the analysis is flow-insensitive)."""

        def setup(b):
            with b.method("Main", "main", [], static=True) as m:
                m.move("y", "x")
                m.alloc("x", "java.lang.Object")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/y") == {"Main.main/0/new java.lang.Object/0"}

    def test_moves_accumulate(self):
        def setup(b):
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("a", "java.lang.Object")
                m.alloc("b", "java.lang.Object")
                m.move("x", "a")
                m.move("x", "b")

        r, _ = build_and_run(setup)
        assert len(pts(r, "Main.main/0/x")) == 2


class TestFields:
    def test_store_load_roundtrip(self):
        def setup(b):
            b.klass("Holder", fields=["f"])
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("h", "Holder")
                m.alloc("v", "java.lang.Object")
                m.store("h", "f", "v")
                m.load("out", "h", "f")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/out") == {"Main.main/0/new java.lang.Object/1"}

    def test_field_sensitivity(self):
        """Distinct fields of the same object do not alias."""

        def setup(b):
            b.klass("Holder", fields=["f", "g"])
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("h", "Holder")
                m.alloc("v", "java.lang.Object")
                m.store("h", "f", "v")
                m.load("out", "h", "g")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/out") == set()

    def test_aliased_bases_share_fields(self):
        def setup(b):
            b.klass("Holder", fields=["f"])
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("h", "Holder")
                m.move("h2", "h")
                m.alloc("v", "java.lang.Object")
                m.store("h", "f", "v")
                m.load("out", "h2", "f")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/out") == {"Main.main/0/new java.lang.Object/1"}

    def test_static_fields_are_global(self):
        def setup(b):
            b.klass("G", static_fields=["s"])
            with b.method("Util", "reader", [], static=True) as m:
                m.static_load("v", "G", "s")
                m.ret("v")
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("x", "java.lang.Object")
                m.static_store("G", "s", "x")
                m.scall("Util", "reader", [], target="got")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/got") == {"Main.main/0/new java.lang.Object/0"}

    def test_arrays_conflate_elements(self):
        def setup(b):
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("arr", "java.lang.Object")
                m.alloc("a", "java.lang.Object")
                m.alloc("b", "java.lang.Object")
                m.array_store("arr", "a")
                m.array_store("arr", "b")
                m.array_load("out", "arr")

        r, _ = build_and_run(setup)
        assert len(pts(r, "Main.main/0/out")) == 2


class TestCalls:
    def test_static_call_params_and_return(self):
        def setup(b):
            with b.method("Util", "id", ["p"], static=True) as m:
                m.ret("p")
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("x", "java.lang.Object")
                m.scall("Util", "id", ["x"], target="y")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/y") == {"Main.main/0/new java.lang.Object/0"}

    def test_virtual_dispatch_on_dynamic_type(self):
        def setup(b):
            b.klass("Animal", abstract=True)
            b.klass("Dog", super_name="Animal")
            b.klass("Cat", super_name="Animal")
            b.klass("Bone")
            b.klass("Fish")
            with b.method("Dog", "food", []) as m:
                m.alloc("f", "Bone")
                m.ret("f")
            with b.method("Cat", "food", []) as m:
                m.alloc("f", "Fish")
                m.ret("f")
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("d", "Dog")
                m.vcall("d", "food", [], target="df")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/df") == {"Dog.food/0/new Bone/0"}
        # Cat.food must not be reachable
        assert "Cat.food/0" not in r.reachable_methods

    def test_inherited_method_dispatch(self):
        def setup(b):
            b.klass("Base")
            b.klass("Derived", super_name="Base")
            with b.method("Base", "self", []) as m:
                m.ret("this")
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("d", "Derived")
                m.vcall("d", "self", [], target="s")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/s") == {"Main.main/0/new Derived/0"}

    def test_this_binding(self):
        def setup(b):
            b.klass("A")
            with b.method("A", "me", []) as m:
                m.ret("this")
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("a1", "A")
                m.alloc("a2", "A")
                m.vcall("a1", "me", [], target="r")

        r, _ = build_and_run(setup)
        # insensitively, `this` merges both receivers only if both call;
        # here only a1 calls, so r is exactly a1's object
        assert pts(r, "Main.main/0/r") == {"Main.main/0/new A/0"}

    def test_unresolvable_dispatch_is_silent(self):
        def setup(b):
            b.klass("A")
            b.klass("B")
            with b.method("B", "run", []) as m:
                m.ret()
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("a", "A")
                m.vcall("a", "run", [])  # A has no run/0

        r, _ = build_and_run(setup)
        assert "B.run/0" not in r.reachable_methods

    def test_special_call_binds_this_statically(self):
        def setup(b):
            b.klass("Base")
            b.klass("Derived", super_name="Base")
            with b.method("Base", "init", []) as m:
                m.ret("this")
            with b.method("Derived", "init", []) as m:
                m.alloc("other", "java.lang.Object")
                m.ret("other")
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("d", "Derived")
                # super-call: statically bound to Base.init
                m.special_call("d", "Base", "init", [], target="r")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/r") == {"Main.main/0/new Derived/0"}
        assert "Derived.init/0" not in r.reachable_methods

    def test_multiple_returns_union(self):
        def setup(b):
            with b.method("Util", "pick", [], static=True) as m:
                m.alloc("a", "java.lang.Object")
                m.alloc("b", "java.lang.Object")
                m.ret("a")
                m.ret("b")
            with b.method("Main", "main", [], static=True) as m:
                m.scall("Util", "pick", [], target="r")

        r, _ = build_and_run(setup)
        assert len(pts(r, "Main.main/0/r")) == 2

    def test_unreachable_method_not_analyzed(self):
        def setup(b):
            with b.method("Dead", "code", [], static=True) as m:
                m.alloc("x", "java.lang.Object")
            with b.method("Main", "main", [], static=True) as m:
                m.ret()

        r, _ = build_and_run(setup)
        assert "Dead.code/0" not in r.reachable_methods
        assert pts(r, "Dead.code/0/x") == set()


class TestCasts:
    def test_cast_filters_incompatible(self):
        def setup(b):
            b.klass("A")
            b.klass("B", super_name="A")
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("a", "A")
                m.alloc("b", "B")
                m.move("x", "a")
                m.move("x", "b")
                m.cast("y", "x", "B")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/y") == {"Main.main/0/new B/1"}

    def test_upcast_keeps_everything(self):
        def setup(b):
            b.klass("A")
            b.klass("B", super_name="A")
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("b", "B")
                m.cast("y", "b", "A")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/y") == {"Main.main/0/new B/0"}

    def test_cast_to_interface(self):
        def setup(b):
            b.interface("I")
            b.klass("A", interfaces=["I"])
            b.klass("B")
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("a", "A")
                m.alloc("b", "B")
                m.move("x", "a")
                m.move("x", "b")
                m.cast("y", "x", "I")

        r, _ = build_and_run(setup)
        assert pts(r, "Main.main/0/y") == {"Main.main/0/new A/0"}


class TestEntryPoints:
    def test_multiple_entry_points(self):
        b = ProgramBuilder()
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("x", "java.lang.Object")
        with b.method("Alt", "boot", [], static=True) as m:
            m.alloc("y", "java.lang.Object")
        b.entry("Main.main/0")
        p = b.build(entry="Alt.boot/0")
        r = analyze(p, "insens")
        assert {"Main.main/0", "Alt.boot/0"} <= set(r.reachable_methods)
