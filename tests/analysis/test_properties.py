"""Property-based whole-pipeline tests on randomly generated programs.

A hypothesis strategy builds small but structurally rich valid IR programs
(hierarchy with overriding, virtual/static calls, field traffic, casts).
Two invariants are checked on every sample:

* **engine agreement** — the worklist solver and the Figure 3 Datalog model
  derive exactly the same relations, for insensitive and deep-context
  flavors (the strongest correctness check we have: two independent
  implementations of the same specification);
* **projection soundness** — collapsing contexts of any context-sensitive
  result yields a subset of the context-insensitive result (each sensitive
  derivation maps homomorphically onto an insensitive one).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ProgramBuilder, analyze, encode_program, policy_by_name
from repro.analysis.datalog_model import DatalogPointsToAnalysis

CLASSES = ["C0", "C1", "C2", "C3"]  # chain: C3 <: C2 <: C1 <: C0
VARS = ["v0", "v1", "v2", "v3"]
FIELDS = ["f", "g"]
STATIC_FIELDS = ["sf0", "sf1"]
STRINGS = ["alpha", "beta"]
CATCH_TYPES = CLASSES + ["java.lang.Object"]
# (class, method) pairs where the method is *declared*, for special calls.
SPECIAL_TARGETS = [("C0", "m0"), ("C2", "m0"), ("C0", "m1")]


@st.composite
def instructions(draw, vars_pool, allow_this):
    """One random instruction descriptor."""
    pool = vars_pool + (["this"] if allow_this else [])
    kind = draw(
        st.sampled_from(
            [
                "alloc",
                "move",
                "store",
                "load",
                "cast",
                "vcall",
                "scall",
                "specialcall",
                "sstore",
                "sload",
                "astore",
                "aload",
                "conststr",
                "ret",
                "throw",
                "catch",
            ]
        )
    )
    v = lambda: draw(st.sampled_from(pool))  # noqa: E731
    tgt = lambda: draw(st.sampled_from(vars_pool))  # noqa: E731
    if kind == "alloc":
        return ("alloc", tgt(), draw(st.sampled_from(CLASSES)))
    if kind == "move":
        return ("move", tgt(), v())
    if kind == "store":
        return ("store", v(), draw(st.sampled_from(FIELDS)), v())
    if kind == "load":
        return ("load", tgt(), v(), draw(st.sampled_from(FIELDS)))
    if kind == "cast":
        return ("cast", tgt(), v(), draw(st.sampled_from(CLASSES)))
    if kind == "vcall":
        return ("vcall", v(), draw(st.sampled_from(["m0", "m1"])), v(), tgt())
    if kind == "scall":
        return ("scall", draw(st.sampled_from(["s0", "s1"])), v(), tgt())
    if kind == "specialcall":
        cls, meth = draw(st.sampled_from(SPECIAL_TARGETS))
        return ("specialcall", v(), cls, meth, v(), tgt())
    if kind == "sstore":
        return ("sstore", draw(st.sampled_from(STATIC_FIELDS)), v())
    if kind == "sload":
        return ("sload", tgt(), draw(st.sampled_from(STATIC_FIELDS)))
    if kind == "astore":
        return ("astore", v(), v())
    if kind == "aload":
        return ("aload", tgt(), v())
    if kind == "conststr":
        return ("conststr", tgt(), draw(st.sampled_from(STRINGS)))
    if kind == "throw":
        return ("throw", v())
    if kind == "catch":
        return ("catch", tgt(), draw(st.sampled_from(CATCH_TYPES)))
    return ("ret", v())


def body(draw, vars_pool, allow_this, max_size=7):
    return draw(
        st.lists(instructions(vars_pool, allow_this), min_size=1, max_size=max_size)
    )


@st.composite
def programs(draw):
    b = ProgramBuilder()
    prev = None
    for name in CLASSES:
        b.klass(name, super_name=prev or "java.lang.Object", fields=FIELDS)
        prev = name
    b.klass("Util", static_fields=STATIC_FIELDS)

    def emit(m, instrs):
        for ins in instrs:
            if ins[0] == "alloc":
                m.alloc(ins[1], ins[2])
            elif ins[0] == "move":
                m.move(ins[1], ins[2])
            elif ins[0] == "store":
                m.store(ins[1], ins[2], ins[3])
            elif ins[0] == "load":
                m.load(ins[1], ins[2], ins[3])
            elif ins[0] == "cast":
                m.cast(ins[1], ins[2], ins[3])
            elif ins[0] == "vcall":
                m.vcall(ins[1], ins[2], [ins[3]], target=ins[4])
            elif ins[0] == "scall":
                m.scall("Util", ins[1], [ins[2]], target=ins[3])
            elif ins[0] == "specialcall":
                m.special_call(ins[1], ins[2], ins[3], [ins[4]], target=ins[5])
            elif ins[0] == "sstore":
                m.static_store("Util", ins[1], ins[2])
            elif ins[0] == "sload":
                m.static_load(ins[1], "Util", ins[2])
            elif ins[0] == "astore":
                m.array_store(ins[1], ins[2])
            elif ins[0] == "aload":
                m.array_load(ins[1], ins[2])
            elif ins[0] == "conststr":
                m.const_string(ins[1], ins[2])
            elif ins[0] == "throw":
                m.throw(ins[1])
            elif ins[0] == "catch":
                m.catch(ins[1], ins[2])
            elif ins[0] == "ret":
                m.ret(ins[1])

    # m0 defined at the root and overridden mid-chain; m1 only at the root.
    for cls, meth in (("C0", "m0"), ("C2", "m0"), ("C0", "m1")):
        with b.method(cls, meth, ["p"]) as m:
            emit(m, body(draw, VARS + ["p"], allow_this=True))
    for meth in ("s0", "s1"):
        with b.method("Util", meth, ["p"], static=True) as m:
            emit(m, body(draw, VARS + ["p"], allow_this=False))
    with b.method("Main", "main", [], static=True) as m:
        emit(m, body(draw, VARS, allow_this=False, max_size=10))
    return b.build(entry="Main.main/0")


def solver_relations(result):
    return (
        frozenset(result.iter_var_points_to()),
        frozenset(result.iter_fld_points_to()),
        frozenset(result.iter_call_graph()),
        frozenset(result.iter_reachable()),
    )


def check_solver_matches_datalog_model(program, flavor):
    facts = encode_program(program)
    policy = policy_by_name(flavor, alloc_class_of=facts.alloc_class_of)
    solver = analyze(program, policy, facts=facts)
    model = DatalogPointsToAnalysis(program, policy, facts=facts).run()
    assert solver_relations(solver) == (
        model.var_points_to,
        model.fld_points_to,
        model.call_graph,
        model.reachable,
    )
    assert frozenset(solver.iter_throw_points_to()) == model.throw_points_to


def check_sensitive_projection_subset_of_insensitive(program, flavor):
    facts = encode_program(program)
    insens = analyze(program, "insens", facts=facts)
    policy = policy_by_name(flavor, alloc_class_of=facts.alloc_class_of)
    sensitive = analyze(program, policy, facts=facts)

    insens_vpt = insens.var_points_to
    for var, heaps in sensitive.var_points_to.items():
        assert heaps <= insens_vpt.get(var, set()), var
    assert sensitive.reachable_methods <= insens.reachable_methods
    insens_cg = insens.call_graph
    for invo, targets in sensitive.call_graph.items():
        assert targets <= insens_cg.get(invo, set()), invo


@given(programs(), st.sampled_from(["insens", "2objH", "2callH", "2typeH"]))
@settings(max_examples=40, deadline=None)
def test_solver_matches_datalog_model(program, flavor):
    check_solver_matches_datalog_model(program, flavor)


@given(programs(), st.sampled_from(["2objH", "2callH", "2typeH", "2objH+hybrid"]))
@settings(max_examples=40, deadline=None)
def test_sensitive_projection_subset_of_insensitive(program, flavor):
    check_sensitive_projection_subset_of_insensitive(program, flavor)


@pytest.mark.slow
@given(programs(), st.sampled_from(["insens", "2objH", "2callH", "2typeH"]))
@settings(max_examples=150, deadline=None)
def test_solver_matches_datalog_model_deep(program, flavor):
    check_solver_matches_datalog_model(program, flavor)


@pytest.mark.slow
@given(programs(), st.sampled_from(["2objH", "2callH", "2typeH", "2objH+hybrid"]))
@settings(max_examples=150, deadline=None)
def test_sensitive_projection_subset_of_insensitive_deep(program, flavor):
    check_sensitive_projection_subset_of_insensitive(program, flavor)
