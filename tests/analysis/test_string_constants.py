"""Tests for string constants and Doop's hard-coded string heuristic.

The paper (Section 5) lists "allocating strings ... context-insensitively"
among the frameworks' hard-coded heuristics — which introspective analysis
generalizes.  Our `string_exclusion_decision` expresses that heuristic as
a fixed RefinementDecision, making the subsumption literal.
"""

import pytest

from repro import ProgramBuilder, analyze, encode_program, policy_by_name
from repro.analysis.datalog_model import DatalogPointsToAnalysis
from repro.contexts import IntrospectivePolicy
from repro.introspection import string_exclusion_decision
from repro.ir import JAVA_STRING


def string_factory_program():
    """A factory stamping labels: every call allocates nothing — it returns
    one of the shared string constants."""
    b = ProgramBuilder()
    b.klass("Tag", fields=["label"])
    with b.method("Labels", "ok", [], static=True) as m:
        m.const_string("s", "OK")
        m.ret("s")
    with b.method("Labels", "err", [], static=True) as m:
        m.const_string("s", "ERROR")
        m.ret("s")
    with b.method("Tag", "init", ["l"]) as m:
        m.store("this", "label", "l")
    with b.method("TagFactory", "make", [], static=True) as m:
        m.alloc("t", "Tag")
        m.ret("t")
    with b.method("Main", "main", [], static=True) as m:
        m.scall("TagFactory", "make", [], target="t1")
        m.scall("Labels", "ok", [], target="l1")
        m.vcall("t1", "init", ["l1"])
        m.scall("TagFactory", "make", [], target="t2")
        m.scall("Labels", "err", [], target="l2")
        m.vcall("t2", "init", ["l2"])
        m.const_string("again", "OK")
        m.cast("str_check", "again", JAVA_STRING)
    return b.build(entry="Main.main/0")


class TestSemantics:
    def test_same_literal_shares_one_heap(self):
        program = string_factory_program()
        result = analyze(program, "insens")
        assert result.points_to("Labels.ok/0/s") == {'<"OK">'}
        assert result.points_to("Main.main/0/again") == {'<"OK">'}

    def test_distinct_literals_distinct_heaps(self):
        program = string_factory_program()
        result = analyze(program, "insens")
        assert result.points_to("Labels.err/0/s") == {'<"ERROR">'}

    def test_string_type_and_cast(self):
        program = string_factory_program()
        facts = encode_program(program)
        assert facts.heap_type['<"OK">'] == JAVA_STRING
        result = analyze(program, "insens", facts=facts)
        assert result.points_to("Main.main/0/str_check") == {'<"OK">'}

    def test_string_const_heaps_tracked(self):
        facts = encode_program(string_factory_program())
        assert facts.string_const_heaps == {'<"OK">', '<"ERROR">'}

    def test_engines_agree_with_string_constants(self):
        program = string_factory_program()
        facts = encode_program(program)
        for flavor in ("insens", "2objH", "2callH"):
            policy = policy_by_name(flavor, alloc_class_of=facts.alloc_class_of)
            solver = analyze(program, policy, facts=facts)
            model = DatalogPointsToAnalysis(program, policy, facts=facts).run()
            assert frozenset(solver.iter_var_points_to()) == model.var_points_to

    def test_type_context_coarsens_to_string_class(self):
        """Shared constants have no single allocating class; under
        type-sensitivity their context element is java.lang.String."""
        facts = encode_program(string_factory_program())
        assert facts.alloc_class_of('<"OK">') == JAVA_STRING


class TestHardCodedHeuristic:
    def test_string_exclusion_is_a_refinement_decision(self):
        program = string_factory_program()
        facts = encode_program(program)
        decision = string_exclusion_decision(facts)
        assert decision.excluded_objects == {'<"OK">', '<"ERROR">'}
        assert not decision.excluded_sites
        assert decision.refine_object("TagFactory.make/0/new Tag/0")
        assert not decision.refine_object('<"OK">')

    def test_strings_get_star_heap_context_under_the_heuristic(self):
        """2callH normally gives string constants per-call-site heap
        contexts; with the hard-coded heuristic they all collapse to ★
        while every other object keeps its refined heap context."""
        program = string_factory_program()
        facts = encode_program(program)
        refined = policy_by_name("2callH")
        plain = analyze(program, refined, facts=facts)
        hardcoded = analyze(
            program,
            IntrospectivePolicy(refined, string_exclusion_decision(facts)),
            facts=facts,
        )

        def string_hctxs(result):
            return {
                hctx
                for _v, _c, heap, hctx in result.iter_var_points_to()
                if heap.startswith('<"')
            }

        assert string_hctxs(plain) != {()}
        assert string_hctxs(hardcoded) == {()}
        # non-string objects still get refined heap contexts
        tag_hctxs = {
            hctx
            for _v, _c, heap, hctx in hardcoded.iter_var_points_to()
            if "new Tag" in heap
        }
        assert tag_hctxs != {()}

    def test_heuristic_costs_no_precision_here(self):
        """Collapsing string heap contexts loses nothing on this program —
        the rationale for the Doop default."""
        program = string_factory_program()
        facts = encode_program(program)
        refined = policy_by_name("2objH")
        plain = analyze(program, refined, facts=facts)
        hardcoded = analyze(
            program,
            IntrospectivePolicy(refined, string_exclusion_decision(facts)),
            facts=facts,
        )
        assert plain.var_points_to == hardcoded.var_points_to
