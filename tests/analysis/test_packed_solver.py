"""Tests for the packed points-to representation and budget exactness.

Covers the PR-2 solver internals: dense (heap, hctx) pair ids, the
incremental cast-filter index (including the staleness case where a heap
is minted *after* the filter was first computed), exact tuple-budget
semantics, the periodic clock check of the time budget, and the
:class:`BudgetExceeded` payload fields.
"""

import pytest

from repro import BudgetExceeded, ProgramBuilder, analyze
from repro.analysis.solver import _CLOCK_CHECK_PERIOD, PointsToSolver, solve
from repro.benchgen import BenchmarkSpec, HubSpec, generate
from repro.contexts.policies import policy_by_name
from repro.facts.encoder import encode_program


def raw_solve(program, analysis, **kwargs):
    """``solve`` with a named policy (the solver itself takes objects)."""
    facts = kwargs.pop("facts", None)
    if facts is None:
        facts = encode_program(program)
    policy = policy_by_name(analysis, alloc_class_of=facts.alloc_class_of)
    return solve(program, policy, facts=facts, **kwargs)


def hub_program(readers=12, elements=10, chain=4):
    spec = BenchmarkSpec(
        name="packedtest",
        util_classes=0,
        strategy_clusters=(),
        box_groups=(),
        sink_groups=(),
        hubs=(HubSpec(readers=readers, elements=elements, chain=chain),),
    )
    return generate(spec)


class TestPackedRepresentation:
    def test_raw_solution_pts_are_pair_id_bitmasks(self):
        b = ProgramBuilder()
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("x", "java.lang.Object")
        program = b.build(entry="Main.main/0")
        raw = raw_solve(program, "insens")
        node = raw.var_nodes[
            (raw.vars.intern("Main.main/0/x"), raw.ctxs.intern(()))
        ]
        mask = raw.pts[node]
        assert isinstance(mask, int) and mask > 0
        # iter_pids materializes the set bits; pair()/iter_pts() recover
        # the (heap, hctx) view.
        (pid,) = raw.iter_pids(node)
        assert mask == 1 << pid
        assert raw.pts_size(node) == 1
        heap_i, hctx_i = raw.pair(pid)
        assert raw.heaps.value(heap_i) == "Main.main/0/new java.lang.Object/0"
        assert raw.pair(pid) in set(raw.iter_pts(node))

    def test_pair_tables_are_parallel(self):
        raw = raw_solve(hub_program(), "2objH")
        assert len(raw.pair_heap) == len(raw.pair_hctx)
        for pid in range(len(raw.pair_heap)):
            assert raw.pair(pid) == (raw.pair_heap[pid], raw.pair_hctx[pid])


class TestIncrementalFilterIndex:
    def test_heap_minted_after_filter_is_cached_still_flows(self):
        """Staleness regression: the cast filter for A is computed while
        only ``new A`` exists; ``Maker.make`` only becomes reachable (and
        its ``new B`` pair only minted) once the receiver object reaches
        the call site, strictly later.  The late pair must still pass the
        (already cached) filter."""
        b = ProgramBuilder()
        b.klass("A")
        b.klass("B", super_name="A")
        b.klass("Maker")
        with b.method("Maker", "make", []) as m:
            m.alloc("nb", "B")
            m.ret("nb")
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("a", "A")
            m.move("x", "a")
            m.cast("y", "x", "A")
            m.alloc("mk", "Maker")
            m.vcall("mk", "make", [], target="r")
            m.move("x", "r")
        program = b.build(entry="Main.main/0")
        result = analyze(program, "insens")
        assert set(result.points_to("Main.main/0/y")) == {
            "Main.main/0/new A/0",
            "Maker.make/0/new B/0",
        }

    def test_filter_still_excludes_incompatible_late_heaps(self):
        b = ProgramBuilder()
        b.klass("A")
        b.klass("B", super_name="A")
        b.klass("C")  # not a subtype of A
        b.klass("Maker")
        with b.method("Maker", "make", []) as m:
            m.alloc("nc", "C")
            m.ret("nc")
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("b", "B")
            m.move("x", "b")
            m.cast("y", "x", "A")
            m.alloc("mk", "Maker")
            m.vcall("mk", "make", [], target="r")
            m.move("x", "r")
        program = b.build(entry="Main.main/0")
        result = analyze(program, "insens")
        assert set(result.points_to("Main.main/0/y")) == {
            "Main.main/0/new B/0"
        }


class TestTupleBudgetExactness:
    def test_budget_equal_to_total_passes(self):
        """The check is strict (``count > max_tuples``): a budget equal
        to the exact derived-tuple count must not trip."""
        program = hub_program()
        total = raw_solve(program, "2objH").tuple_count
        raw = raw_solve(program, "2objH", max_tuples=total)
        assert raw.tuple_count == total

    def test_budget_one_below_total_trips_at_total(self):
        program = hub_program()
        total = raw_solve(program, "2objH").tuple_count
        with pytest.raises(BudgetExceeded) as info:
            raw_solve(program, "2objH", max_tuples=total - 1)
        # Derivation order is deterministic, so the trip happens exactly
        # when the count first exceeds the budget — at ``total``.
        assert info.value.tuples == total

    def test_exception_payload_fields(self):
        program = hub_program()
        with pytest.raises(BudgetExceeded) as info:
            raw_solve(program, "2objH", max_tuples=100)
        exc = info.value
        assert exc.reason == "tuple budget exceeded"
        assert isinstance(exc.tuples, int) and exc.tuples > 100
        assert isinstance(exc.seconds, float) and exc.seconds >= 0.0
        assert "tuple budget" in str(exc)


class TestTimeBudgetCadence:
    def test_clock_checked_every_period(self):
        """The wall clock is consulted once per ``_CLOCK_CHECK_PERIOD``
        charged tuples, so even a zero time budget cannot trip on a
        program that derives fewer tuples than one period."""
        b = ProgramBuilder()
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("x", "java.lang.Object")
            m.move("y", "x")
        program = b.build(entry="Main.main/0")
        raw = raw_solve(program, "insens", max_seconds=0.0)
        assert raw.tuple_count < _CLOCK_CHECK_PERIOD

    def test_zero_time_budget_trips_past_one_period(self):
        program = hub_program(readers=30, elements=30, chain=8)
        with pytest.raises(BudgetExceeded) as info:
            raw_solve(program, "2objH", max_seconds=0.0)
        exc = info.value
        assert exc.reason == "time budget exceeded"
        # The trip can only happen on a period boundary.
        assert exc.tuples >= _CLOCK_CHECK_PERIOD
        assert "time budget" in str(exc)


class TestHeapTypeFacts:
    def test_heaptype_without_alloc_fact_does_not_crash(self):
        """Regression: ``_compile_facts`` used to look the heap up in the
        interner (KeyError) instead of interning it; a heaptype fact may
        legitimately mention a heap with no alloc fact in hand-built or
        file-loaded fact bases."""
        b = ProgramBuilder()
        b.klass("A")
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("x", "A")
        program = b.build(entry="Main.main/0")
        facts = encode_program(program)
        facts.heaptype.append(("phantom#heap", "A"))
        raw = PointsToSolver(
            program, policy_by_name("insens"), facts=facts
        ).solve()
        assert raw.tuple_count > 0


class TestVcallDispatchKeying:
    def test_vcall_dispatches_keyed_by_bare_invo(self):
        """``RawSolution.vcall_dispatches`` maps the *invocation-site id*
        (not a (invo, ctx) pair) to the union of dispatched callees."""
        b = ProgramBuilder()
        b.klass("Maker")
        with b.method("Maker", "make", []) as m:
            m.ret()
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("mk", "Maker")
            m.vcall("mk", "make", [])
        program = b.build(entry="Main.main/0")
        raw = raw_solve(program, "2objH")
        assert raw.vcall_dispatches
        for invo, meths in raw.vcall_dispatches.items():
            assert isinstance(invo, int)
            assert raw.invos.value(invo)  # a valid interned invocation id
            assert all(isinstance(meth, int) for meth in meths)
