"""Tests for recursive programs: k-bounded contexts guarantee termination
and the expected context sets arise at fixpoint."""

import pytest

from repro import ProgramBuilder, analyze


class TestDirectRecursion:
    def build(self):
        """f calls itself, threading a payload through the recursion."""
        b = ProgramBuilder()
        b.klass("Node", fields=["next"])
        with b.method("Rec", "f", ["p"], static=True) as m:
            m.alloc("n", "Node")
            m.store("n", "next", "p")
            m.scall("Rec", "f", ["n"], target="r")
            m.ret("p")
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("seed", "Node")
            m.scall("Rec", "f", ["seed"], target="out")
        return b.build(entry="Main.main/0")

    @pytest.mark.parametrize("flavor", ["insens", "2objH", "2callH", "2typeH"])
    def test_terminates(self, flavor):
        program = self.build()
        result = analyze(program, flavor, max_tuples=100_000)
        assert "Rec.f/1" in result.reachable_methods

    def test_payload_accumulates_all_levels(self):
        program = self.build()
        result = analyze(program, "insens")
        # p sees the seed and the recursively built nodes
        assert result.points_to("Rec.f/1/p") == {
            "Main.main/0/new Node/0",
            "Rec.f/1/new Node/0",
        }

    def test_callsite_contexts_saturate(self):
        """2callH on self-recursion: contexts are the k-deep call-site
        strings — (driver), (rec, driver), and the saturated (rec, rec)
        that every deeper level re-truncates to.  Exactly three."""
        program = self.build()
        result = analyze(program, "2callH")
        contexts = {ctx for meth, ctx in result.iter_reachable() if meth == "Rec.f/1"}
        rec_site = "Rec.f/1/invo/0"
        driver_site = "Main.main/0/invo/0"
        assert contexts == {
            (driver_site,),
            (rec_site, driver_site),
            (rec_site, rec_site),
        }


class TestMutualRecursion:
    def test_even_odd(self):
        b = ProgramBuilder()
        with b.method("E", "even", ["p"], static=True) as m:
            m.scall("O", "odd", ["p"], target="r")
            m.ret("r")
        with b.method("O", "odd", ["p"], static=True) as m:
            m.scall("E", "even", ["p"], target="r")
            m.ret("p")
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("x", "java.lang.Object")
            m.scall("E", "even", ["x"], target="out")
        program = b.build(entry="Main.main/0")
        for flavor in ("insens", "2callH"):
            result = analyze(program, flavor, max_tuples=100_000)
            assert result.points_to("Main.main/0/out") == {
                "Main.main/0/new java.lang.Object/0"
            }


class TestRecursiveObjects:
    def test_recursive_virtual_dispatch(self):
        """A linked-list visitor: node.visit() calls next.visit()."""
        b = ProgramBuilder()
        b.klass("Node", fields=["next"])
        with b.method("Node", "visit", []) as m:
            m.load("nxt", "this", "next")
            m.vcall("nxt", "visit", [], target="r")
            m.ret("this")
        with b.method("Main", "main", [], static=True) as m:
            for i in range(3):
                m.alloc(f"n{i}", "Node")
            m.store("n0", "next", "n1")
            m.store("n1", "next", "n2")
            m.store("n2", "next", "n0")  # cycle!
            m.vcall("n0", "visit", [], target="out")
        program = b.build(entry="Main.main/0")
        result = analyze(program, "2objH", max_tuples=100_000)
        # all three nodes serve as receivers around the cycle
        contexts = {
            ctx for meth, ctx in result.iter_reachable() if meth == "Node.visit/0"
        }
        assert len(contexts) == 3
        # out receives the return of the *first* call only: under 2objH
        # that is precisely n0's `this`, while insensitively the shared
        # return variable merges all three receivers.
        assert result.points_to("Main.main/0/out") == {"Main.main/0/new Node/0"}
        insens = analyze(program, "insens")
        assert len(insens.points_to("Main.main/0/out")) == 3

    def test_recursive_allocation_in_context(self):
        """An object allocated inside a recursive factory gets bounded heap
        contexts under 2objH even though the recursion is unbounded."""
        b = ProgramBuilder()
        b.klass("Gen")
        b.klass("Item")
        with b.method("Gen", "spawn", []) as m:
            m.alloc("g", "Gen")
            m.alloc("it", "Item")
            m.vcall("g", "spawn", [], target="deep")
            m.ret("it")
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("g0", "Gen")
            m.vcall("g0", "spawn", [], target="top")
        program = b.build(entry="Main.main/0")
        result = analyze(program, "2objH", max_tuples=200_000)
        # contexts of spawn: the driver's Gen plus the self-allocated Gen
        # (whose own context re-truncates to itself): finitely many.
        contexts = {
            ctx for meth, ctx in result.iter_reachable() if meth == "Gen.spawn/0"
        }
        assert 2 <= len(contexts) <= 4
