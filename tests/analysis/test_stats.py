"""Tests for the cost-explanation report."""

import pytest

from repro import analyze, encode_program
from repro.analysis.stats import explain_costs
from repro.benchgen import BenchmarkSpec, HubSpec, generate


@pytest.fixture(scope="module")
def hub_setup():
    spec = BenchmarkSpec(
        name="hot",
        util_classes=4,
        util_methods_per_class=3,
        strategy_clusters=(3,),
        box_groups=(),
        sink_groups=(),
        hubs=(HubSpec(readers=12, elements=10, chain=5),),
    )
    program = generate(spec)
    facts = encode_program(program)
    result = analyze(program, "2objH", facts=facts)
    return program, facts, result


class TestExplainCosts:
    def test_hub_reader_is_hottest_by_contexts(self, hub_setup):
        _, facts, result = hub_setup
        report = explain_costs(result, facts)
        top_methods = [m for m, _n in report.method_contexts[:3]]
        assert "HReader0.consume/1" in top_methods
        consume_contexts = dict(report.method_contexts)["HReader0.consume/1"]
        assert consume_contexts == 12  # one per reader object

    def test_hub_reader_dominates_tuples(self, hub_setup):
        _, facts, result = hub_setup
        report = explain_costs(result, facts)
        assert report.method_tuples[0][0] == "HReader0.consume/1"
        # the pathological method carries the bulk of the work
        assert report.concentration(top=3) > 0.5

    def test_histogram_accounts_for_all_methods(self, hub_setup):
        _, facts, result = hub_setup
        report = explain_costs(result, facts)
        assert sum(report.context_histogram.values()) == len(
            report.method_contexts
        )
        assert report.context_histogram[12] >= 1  # consume's bucket

    def test_heap_context_fanout(self, hub_setup):
        _, facts, result = hub_setup
        report = explain_costs(result, facts)
        top_heap, n = report.object_heap_contexts[0]
        # wrapper objects get one heap context per reader
        assert "HWrap0" in top_heap
        assert n == 12

    def test_render(self, hub_setup):
        _, facts, result = hub_setup
        report = explain_costs(result, facts)
        text = report.render(top=3)
        assert "hottest methods by contexts" in text
        assert "HReader0.consume/1" in text

    def test_insensitive_run_is_flat(self, hub_setup):
        program, facts, _ = hub_setup
        report = explain_costs(analyze(program, "insens", facts=facts), facts)
        assert all(n == 1 for _m, n in report.method_contexts)
        assert set(report.context_histogram) == {1}
