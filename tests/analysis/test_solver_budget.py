"""Tests for the solver's resource budgets (the paper's timeout analog)."""

import pytest

from repro import BudgetExceeded, ProgramBuilder, analyze
from repro.benchgen import BenchmarkSpec, HubSpec, generate


def explosive_program():
    """A small hub program whose 2objH cost far exceeds its insens cost."""
    spec = BenchmarkSpec(
        name="boom",
        util_classes=0,
        strategy_clusters=(),
        box_groups=(),
        sink_groups=(),
        hubs=(HubSpec(readers=40, elements=40, chain=10),),
    )
    return generate(spec)


class TestTupleBudget:
    def test_budget_exceeded_raises(self):
        program = explosive_program()
        with pytest.raises(BudgetExceeded) as info:
            analyze(program, "2objH", max_tuples=2000)
        assert info.value.tuples > 2000
        assert "tuple budget" in str(info.value)

    def test_generous_budget_passes(self):
        program = explosive_program()
        result = analyze(program, "2objH", max_tuples=10_000_000)
        assert result.stats().tuple_count > 2000

    def test_insensitive_fits_where_sensitive_does_not(self):
        """The bimodality in miniature: same program, same budget."""
        program = explosive_program()
        budget = 5000
        insens = analyze(program, "insens", max_tuples=budget)
        assert insens.stats().tuple_count <= budget
        with pytest.raises(BudgetExceeded):
            analyze(program, "2objH", max_tuples=budget)

    def test_budget_none_means_unlimited(self):
        program = explosive_program()
        analyze(program, "2objH")  # must terminate without budget


class TestTimeBudget:
    def test_zero_time_budget_trips(self):
        program = explosive_program()
        with pytest.raises(BudgetExceeded, match="time budget"):
            analyze(program, "2objH", max_seconds=0.0)
