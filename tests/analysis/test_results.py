"""Tests for AnalysisResult projections and stats."""

import pytest

from repro import analyze, encode_program


class TestProjections:
    def test_var_points_to_projection(self, tiny_program):
        r = analyze(tiny_program, "2objH")
        proj = r.var_points_to
        assert proj["Main.main/0/a"] == {"Main.main/0/new A/0"}
        # contexts are collapsed: each var maps to plain heap names
        for heaps in proj.values():
            assert all(isinstance(h, str) for h in heaps)

    def test_points_to_unknown_var_is_empty(self, tiny_program):
        r = analyze(tiny_program, "insens")
        assert r.points_to("Main.main/0/ghost") == frozenset()

    def test_fld_points_to_projection(self, tiny_program):
        r = analyze(tiny_program, "insens")
        assert r.fld_points_to[("Main.main/0/new A/0", "f")] == {
            "Main.main/0/new B/1"
        }

    def test_call_graph_projection(self, tiny_program):
        r = analyze(tiny_program, "insens")
        targets = {m for ms in r.call_graph.values() for m in ms}
        assert targets == {"A.id/1", "B.id/1"}

    def test_reachable_methods(self, tiny_program):
        r = analyze(tiny_program, "insens")
        assert r.reachable_methods == {"Main.main/0", "A.id/1", "B.id/1"}

    def test_vcall_resolved_targets(self, tiny_program):
        r = analyze(tiny_program, "insens")
        assert r.vcall_resolved_targets("Main.main/0/invo/0") == {"A.id/1"}
        assert r.vcall_resolved_targets("Main.main/0/invo/1") == {"B.id/1"}
        assert r.vcall_resolved_targets("no/such/site") == frozenset()

    def test_projections_are_cached(self, tiny_program):
        r = analyze(tiny_program, "insens")
        assert r.var_points_to is r.var_points_to


class TestIteration:
    def test_iter_var_points_to_shape(self, tiny_program):
        r = analyze(tiny_program, "2objH")
        for var, ctx, heap, hctx in r.iter_var_points_to():
            assert isinstance(var, str) and isinstance(heap, str)
            assert isinstance(ctx, tuple) and isinstance(hctx, tuple)

    def test_iter_call_graph_shape(self, tiny_program):
        r = analyze(tiny_program, "2callH")
        edges = list(r.iter_call_graph())
        assert edges
        for invo, caller_ctx, meth, callee_ctx in edges:
            assert "invo" in invo
            assert isinstance(caller_ctx, tuple)
            assert meth in r.reachable_methods
            assert isinstance(callee_ctx, tuple)


class TestStats:
    def test_stats_fields(self, tiny_program):
        r = analyze(tiny_program, "insens")
        s = r.stats()
        assert s.analysis == "insens"
        assert s.reachable_methods == 3
        assert s.contexts == 1
        assert s.heap_contexts == 1
        assert s.var_pts_tuples > 0
        assert s.tuple_count >= s.var_pts_tuples
        assert not s.timed_out

    def test_stats_row_keys(self, tiny_program):
        row = analyze(tiny_program, "insens").stats().row()
        assert {"analysis", "seconds", "tuples", "var-pts", "cg-edges"} <= set(row)

    def test_timed_out_flag_propagates(self, tiny_program):
        s = analyze(tiny_program, "insens").stats(timed_out=True)
        assert s.timed_out
