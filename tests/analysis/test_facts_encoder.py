"""Tests for the IR -> input-relations encoder (paper Figure 2's EDB)."""

import pytest

from repro import encode_program
from repro.facts import INPUT_RELATIONS, arity_of


class TestInstructionRelations:
    def test_alloc(self, tiny_facts):
        assert ("Main.main/0/a", "Main.main/0/new A/0", "Main.main/0") in tiny_facts.alloc

    def test_vcall(self, tiny_facts):
        rows = {r for r in tiny_facts.vcall}
        assert ("Main.main/0/a", "id/1", "Main.main/0/invo/0", "Main.main/0") in rows

    def test_load_store(self, tiny_facts):
        assert ("Main.main/0/x", "Main.main/0/a", "f") in tiny_facts.load
        assert ("Main.main/0/a", "f", "Main.main/0/b") in tiny_facts.store

    def test_cast(self, tiny_facts):
        assert (
            "Main.main/0/y",
            "B",
            "Main.main/0/x",
            "Main.main/0",
        ) in tiny_facts.cast


class TestNameAndTypeRelations:
    def test_formal_and_actual_args(self, tiny_facts):
        assert ("A.id/1", 0, "A.id/1/p") in tiny_facts.formalarg
        assert ("Main.main/0/invo/0", 0, "Main.main/0/b") in tiny_facts.actualarg

    def test_formal_and_actual_returns(self, tiny_facts):
        assert ("A.id/1", "A.id/1/p") in tiny_facts.formalreturn
        assert ("Main.main/0/invo/0", "Main.main/0/r1") in tiny_facts.actualreturn

    def test_thisvar_only_for_instance_methods(self, tiny_facts):
        meths = {m for m, _ in tiny_facts.thisvar}
        assert meths == {"A.id/1", "B.id/1"}

    def test_heaptype(self, tiny_facts):
        assert tiny_facts.heap_type["Main.main/0/new B/1"] == "B"

    def test_allocclass_for_type_sensitivity(self, tiny_facts):
        assert tiny_facts.alloc_class_of("Main.main/0/new A/0") == "Main"
        assert tiny_facts.alloc_class_of("B.id/1/new B/0") == "B"

    def test_lookup_covers_concrete_receivers(self, tiny_facts):
        rows = set(tiny_facts.lookup)
        assert ("A", "id/1", "A.id/1") in rows
        assert ("B", "id/1", "B.id/1") in rows
        # abstract/interface types never appear as receivers
        assert all(t not in ("java.lang.Object",) or m for t, _s, m in rows)

    def test_subtype_reflexive_transitive(self, tiny_facts):
        rows = set(tiny_facts.subtype)
        assert ("B", "B") in rows
        assert ("B", "A") in rows
        assert ("B", "java.lang.Object") in rows
        assert ("A", "B") not in rows

    def test_reachable_roots_are_entry_points(self, tiny_facts):
        assert tiny_facts.reachableroot == [("Main.main/0",)]

    def test_vars_of_method_qualified(self, tiny_facts):
        main_vars = set(tiny_facts.vars_of_method["Main.main/0"])
        assert "Main.main/0/a" in main_vars and "Main.main/0/y" in main_vars


class TestKitchenSink:
    def test_special_and_static_calls(self, kitchen_sink_program):
        facts = encode_program(kitchen_sink_program)
        assert any(callee == "Animal.init/1" for _b, callee, _i, _m in facts.specialcall)
        assert any(callee == "Util.pick/2" for callee, _i, _m in facts.scall)

    def test_static_fields(self, kitchen_sink_program):
        facts = encode_program(kitchen_sink_program)
        assert any(
            (cls, fld) == ("Globals", "shared") for _v, cls, fld in facts.staticload
        )
        assert any(
            (cls, fld) == ("Globals", "shared") for cls, fld, _v in facts.staticstore
        )

    def test_relation_dict_matches_schema(self, kitchen_sink_program):
        facts = encode_program(kitchen_sink_program)
        rel_dict = facts.as_relation_dict()
        for name, rows in rel_dict.items():
            assert name in INPUT_RELATIONS
            for row in rows:
                assert len(row) == arity_of(name), name

    def test_count_tuples_positive(self, tiny_facts):
        assert tiny_facts.count_tuples() > 20


class TestErrors:
    def test_unfrozen_program_rejected(self):
        from repro.ir.program import Program

        with pytest.raises(ValueError, match="frozen"):
            encode_program(Program())
