"""Tests for the exception-flow extension: throw/catch semantics,
propagation through the call graph, context-sensitivity of handlers,
engine cross-validation, and the exceptions client."""

import pytest

from repro import ProgramBuilder, analyze, encode_program, policy_by_name
from repro.analysis.datalog_model import DatalogPointsToAnalysis
from repro.clients import analyze_exceptions


def build_and_run(setup, analysis="insens"):
    b = ProgramBuilder()
    b.klass("Exc")
    b.klass("IOExc", super_name="Exc")
    b.klass("NetExc", super_name="Exc")
    setup(b)
    p = b.build(entry="Main.main/0")
    return analyze(p, analysis), p


class TestLocalThrowCatch:
    def test_matching_clause_binds(self):
        def setup(b):
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("e", "IOExc")
                m.throw("e")
                m.catch("h", "IOExc")

        r, _ = build_and_run(setup)
        assert r.points_to("Main.main/0/h") == {"Main.main/0/new IOExc/0"}
        assert r.throw_points_to == {}

    def test_supertype_clause_catches_subtype(self):
        def setup(b):
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("e", "IOExc")
                m.throw("e")
                m.catch("h", "Exc")

        r, _ = build_and_run(setup)
        assert r.points_to("Main.main/0/h") == {"Main.main/0/new IOExc/0"}

    def test_subtype_clause_misses_supertype(self):
        def setup(b):
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("e", "Exc")
                m.throw("e")
                m.catch("h", "IOExc")

        r, _ = build_and_run(setup)
        assert r.points_to("Main.main/0/h") == set()
        assert r.throw_points_to["Main.main/0"] == {"Main.main/0/new Exc/0"}

    def test_all_matching_clauses_bind(self):
        """Any-match over-approximation: both clauses receive."""

        def setup(b):
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("e", "IOExc")
                m.throw("e")
                m.catch("h1", "IOExc")
                m.catch("h2", "Exc")

        r, _ = build_and_run(setup)
        assert r.points_to("Main.main/0/h1") == {"Main.main/0/new IOExc/0"}
        assert r.points_to("Main.main/0/h2") == {"Main.main/0/new IOExc/0"}

    def test_uncaught_escapes(self):
        def setup(b):
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("e", "NetExc")
                m.throw("e")
                m.catch("h", "IOExc")

        r, _ = build_and_run(setup)
        assert r.throw_points_to["Main.main/0"] == {"Main.main/0/new NetExc/0"}


class TestPropagation:
    def test_escape_through_call_chain(self):
        def setup(b):
            with b.method("Deep", "boom", [], static=True) as m:
                m.alloc("e", "IOExc")
                m.throw("e")
            with b.method("Mid", "relay", [], static=True) as m:
                m.scall("Deep", "boom", [])
            with b.method("Main", "main", [], static=True) as m:
                m.scall("Mid", "relay", [])
                m.catch("h", "IOExc")

        r, _ = build_and_run(setup)
        assert r.points_to("Main.main/0/h") == {"Deep.boom/0/new IOExc/0"}
        assert "Mid.relay/0" in r.throw_points_to
        assert "Main.main/0" not in r.throw_points_to

    def test_intermediate_handler_filters(self):
        """Mid catches IOExc; only NetExc reaches main."""

        def setup(b):
            with b.method("Deep", "boom", [], static=True) as m:
                m.alloc("io", "IOExc")
                m.throw("io")
                m.alloc("net", "NetExc")
                m.throw("net")
            with b.method("Mid", "relay", [], static=True) as m:
                m.scall("Deep", "boom", [])
                m.catch("local", "IOExc")
            with b.method("Main", "main", [], static=True) as m:
                m.scall("Mid", "relay", [])
                m.catch("h", "Exc")

        r, _ = build_and_run(setup)
        assert r.points_to("Mid.relay/0/local") == {"Deep.boom/0/new IOExc/0"}
        assert r.points_to("Main.main/0/h") == {"Deep.boom/0/new NetExc/1"}

    def test_virtual_call_propagation(self):
        def setup(b):
            b.klass("Thrower")
            with b.method("Thrower", "go", []) as m:
                m.alloc("e", "IOExc")
                m.throw("e")
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("t", "Thrower")
                m.vcall("t", "go", [])
                m.catch("h", "IOExc")

        r, _ = build_and_run(setup)
        assert r.points_to("Main.main/0/h") == {"Thrower.go/0/new IOExc/0"}

    def test_exception_objects_flow_like_objects(self):
        """A caught exception is an ordinary value afterwards."""

        def setup(b):
            b.klass("Holder", fields=["f"])
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("e", "IOExc")
                m.throw("e")
                m.catch("h", "Exc")
                m.alloc("box", "Holder")
                m.store("box", "f", "h")
                m.load("back", "box", "f")

        r, _ = build_and_run(setup)
        assert r.points_to("Main.main/0/back") == {"Main.main/0/new IOExc/0"}


class TestContextSensitivity:
    @pytest.fixture(scope="class")
    def program(self):
        """Two workers throw their own exception objects through a shared
        helper; context-sensitivity keeps the handlers apart."""
        b = ProgramBuilder()
        b.klass("Exc")
        b.klass("Worker", fields=["payload"])
        with b.method("Worker", "setup", ["e"]) as m:
            m.store("this", "payload", "e")
        with b.method("Worker", "fail", []) as m:
            m.load("e", "this", "payload")
            m.throw("e")
        for i in range(2):
            with b.method(f"Site{i}", "run", ["w"], static=True) as m:
                m.vcall("w", "fail", [])
                m.catch("h", "Exc")
        with b.method("Main", "main", [], static=True) as m:
            for i in range(2):
                m.alloc(f"w{i}", "Worker")
                m.alloc(f"e{i}", "Exc")
                m.vcall(f"w{i}", "setup", [f"e{i}"])
                m.scall(f"Site{i}", "run", [f"w{i}"])
        return b.build(entry="Main.main/0")

    def test_insensitive_conflates_handlers(self, program):
        r = analyze(program, "insens")
        assert len(r.points_to("Site0.run/1/h")) == 2

    def test_object_sensitivity_separates_handlers(self, program):
        r = analyze(program, "2objH")
        assert r.points_to("Site0.run/1/h") == {"Main.main/0/new Exc/1"}
        assert r.points_to("Site1.run/1/h") == {"Main.main/0/new Exc/3"}

    def test_throw_points_to_relation_has_contexts(self, program):
        r = analyze(program, "2objH")
        rows = list(r.iter_throw_points_to())
        # Worker.fail escapes per receiver context before being caught
        fails = [row for row in rows if row[0] == "Worker.fail/0"]
        assert len(fails) == 2
        assert {row[1] for row in fails} == {
            ("Main.main/0/new Worker/0",),
            ("Main.main/0/new Worker/2",),
        }


class TestEngineAgreement:
    @pytest.mark.parametrize("flavor", ["insens", "2objH", "2callH", "2typeH"])
    def test_solver_matches_model(self, flavor):
        b = ProgramBuilder()
        b.klass("Exc")
        b.klass("IOExc", super_name="Exc")
        with b.method("Lib", "risky", []) as m:
            m.alloc("e", "IOExc")
            m.throw("e")
            m.ret("this")
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("lib", "Lib")
            m.vcall("lib", "risky", [], target="r")
            m.catch("h", "IOExc")
            m.alloc("raw", "Exc")
            m.throw("raw")
        program = b.build(entry="Main.main/0")
        facts = encode_program(program)
        policy = policy_by_name(flavor, alloc_class_of=facts.alloc_class_of)
        solver = analyze(program, policy, facts=facts)
        model = DatalogPointsToAnalysis(program, policy, facts=facts).run()
        assert frozenset(solver.iter_var_points_to()) == model.var_points_to
        assert (
            frozenset(solver.iter_throw_points_to()) == model.throw_points_to
        )


class TestExceptionsClient:
    def test_report(self):
        def setup(b):
            with b.method("Lib", "boom", [], static=True) as m:
                m.alloc("e", "NetExc")
                m.throw("e")
            with b.method("Main", "main", [], static=True) as m:
                m.scall("Lib", "boom", [])
                m.catch("dead", "IOExc")  # never matches NetExc

        r, p = build_and_run(setup)
        report = analyze_exceptions(r, encode_program(p))
        assert report.may_crash
        assert report.escaping["Main.main/0"] == {"Lib.boom/0/new NetExc/0"}
        assert report.escaping_count == 1
        assert report.dead_handlers == {"Main.main/0/dead"}
        assert "escaping 1" in report.summary()

    def test_clean_program(self):
        def setup(b):
            with b.method("Main", "main", [], static=True) as m:
                m.alloc("e", "IOExc")
                m.throw("e")
                m.catch("h", "Exc")

        r, p = build_and_run(setup)
        report = analyze_exceptions(r, encode_program(p))
        assert not report.may_crash
        assert report.dead_handlers == frozenset()
