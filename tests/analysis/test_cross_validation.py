"""Cross-validation: the worklist solver and the Datalog model must compute
exactly the same VARPOINTSTO / CALLGRAPH / REACHABLE / FLDPOINTSTO relations
on every program kind, for every context flavor, including introspective
configurations and both refinement-set polarities."""

import pytest

from repro import ProgramBuilder, analyze, encode_program, policy_by_name
from repro.analysis.datalog_model import DatalogPointsToAnalysis
from repro.contexts import InsensitivePolicy, IntrospectivePolicy, RefinementDecision
from tests.conftest import (
    build_box_program,
    build_kitchen_sink_program,
    build_tiny_program,
)

PROGRAMS = {
    "tiny": build_tiny_program,
    "boxes": build_box_program,
    "kitchen-sink": build_kitchen_sink_program,
}

FLAVORS = ["insens", "2objH", "2callH", "2typeH", "1objH", "2objH+hybrid"]


def solver_relations(result):
    return (
        frozenset(result.iter_var_points_to()),
        frozenset(result.iter_fld_points_to()),
        frozenset(result.iter_call_graph()),
        frozenset(result.iter_reachable()),
    )


def model_relations(model_result):
    return (
        model_result.var_points_to,
        model_result.fld_points_to,
        model_result.call_graph,
        model_result.reachable,
    )


@pytest.mark.parametrize("flavor", FLAVORS)
@pytest.mark.parametrize("prog_name", sorted(PROGRAMS))
def test_plain_analyses_agree(prog_name, flavor):
    program = PROGRAMS[prog_name]()
    facts = encode_program(program)
    policy = policy_by_name(flavor, alloc_class_of=facts.alloc_class_of)
    solver = analyze(program, policy, facts=facts)
    model = DatalogPointsToAnalysis(program, policy, facts=facts).run()
    assert solver_relations(solver) == model_relations(model)


def introspective_setup(program):
    """An arbitrary but nonempty refinement decision over the box program."""
    facts = encode_program(program)
    pass1 = analyze(program, "insens", facts=facts)
    cg_pairs = {
        (invo, meth)
        for invo, targets in pass1.call_graph.items()
        for meth in targets
    }
    all_objects = set(facts.all_heaps)
    # exclude one box allocation and one call-site pair, refine the rest
    excluded_objects = {h for h in all_objects if h.endswith("BoxFactory0.make/0/new Box/0")}
    excluded_objects = excluded_objects or {sorted(all_objects)[0]}
    excluded_sites = {sorted(cg_pairs)[0]}
    return facts, pass1, all_objects, cg_pairs, excluded_objects, excluded_sites


@pytest.mark.parametrize("flavor", ["2objH", "2callH"])
def test_introspective_agree_complement_polarity(flavor):
    program = build_box_program()
    facts, _p1, _objs, _sites, excl_obj, excl_sites = introspective_setup(program)
    refined = policy_by_name(flavor, alloc_class_of=facts.alloc_class_of)

    solver = analyze(
        program,
        IntrospectivePolicy(refined, RefinementDecision(excl_obj, excl_sites)),
        facts=facts,
    )
    model = DatalogPointsToAnalysis(
        program,
        InsensitivePolicy(),
        refined_policy=refined,
        facts=facts,
        polarity="complement",
        excluded_objects=excl_obj,
        excluded_sites=excl_sites,
    ).run()
    assert solver_relations(solver) == model_relations(model)


def test_positive_and_complement_polarity_agree():
    """Footnote 4: the positive-form and complement-form gating must be
    equivalent when SITETOREFINE = universe - exclusions."""
    program = build_box_program()
    facts, pass1, all_objects, cg_pairs, excl_obj, excl_sites = introspective_setup(
        program
    )
    refined = policy_by_name("2objH")

    complement = DatalogPointsToAnalysis(
        program,
        InsensitivePolicy(),
        refined_policy=refined,
        facts=facts,
        polarity="complement",
        excluded_objects=excl_obj,
        excluded_sites=excl_sites,
    ).run()
    positive = DatalogPointsToAnalysis(
        program,
        InsensitivePolicy(),
        refined_policy=refined,
        facts=facts,
        polarity="positive",
        objects_to_refine=all_objects - excl_obj,
        sites_to_refine=cg_pairs - excl_sites,
    ).run()
    assert model_relations(complement) == model_relations(positive)


def test_first_pass_with_empty_refine_sets_is_insensitive():
    """Paper Section 3: in the first run SITETOREFINE/OBJECTTOREFINE are
    empty (positive polarity) and the refined constructors never fire, even
    though they are configured."""
    program = build_tiny_program()
    facts = encode_program(program)
    first_pass = DatalogPointsToAnalysis(
        program,
        InsensitivePolicy(),
        refined_policy=policy_by_name("2objH"),
        facts=facts,
        polarity="positive",
    ).run()
    plain = DatalogPointsToAnalysis(program, InsensitivePolicy(), facts=facts).run()
    assert model_relations(first_pass) == model_relations(plain)
