"""Tests for the SCC-partitioned parallel solve mode.

``min_round_nodes=0`` forces every round through the worker machinery —
shared-memory bootstrap, round barriers, frontier merging — even on tiny
programs, so these tests exercise the real parallel path, not the
sequential fallback.  This module doubles as the tier-1 parallel smoke
run required by CI.
"""

import pytest

from repro import BudgetExceeded
from repro.analysis.parallel import ParallelPointsToSolver, parallel_solve
from repro.analysis.results import AnalysisResult
from repro.analysis.solver import solve
from repro.benchgen import BenchmarkSpec, HubSpec, generate
from repro.contexts.policies import policy_by_name
from repro.facts.encoder import encode_program


def hub_program(readers=10, elements=8, chain=3):
    spec = BenchmarkSpec(
        name="partest",
        util_classes=2,
        strategy_clusters=(2,),
        box_groups=(2,),
        sink_groups=(),
        hubs=(HubSpec(readers=readers, elements=elements, chain=chain),),
    )
    return generate(spec)


def relations(result: AnalysisResult):
    """All five output relations as comparable sets."""
    return {
        "VARPOINTSTO": set(result.iter_var_points_to()),
        "FLDPOINTSTO": set(result.iter_fld_points_to()),
        "CALLGRAPH": set(result.iter_call_graph()),
        "REACHABLE": set(result.iter_reachable()),
        "THROWPOINTSTO": set(result.iter_throw_points_to()),
    }


def solve_pair(program, analysis, workers, **kwargs):
    facts = encode_program(program)
    policy = policy_by_name(analysis, alloc_class_of=facts.alloc_class_of)
    seq = solve(program, policy, facts=facts)
    par = parallel_solve(
        program,
        policy,
        facts=facts,
        workers=workers,
        min_round_nodes=0,
        **kwargs,
    )
    return seq, par


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("analysis", ["insens", "2objH"])
    def test_all_relations_match_sequential(self, workers, analysis):
        program = hub_program()
        seq, par = solve_pair(program, analysis, workers)
        assert par.tuple_count == seq.tuple_count
        assert relations(AnalysisResult(par, analysis)) == relations(
            AnalysisResult(seq, analysis)
        )

    def test_casts_and_throws_survive_partitioning(self):
        """Filtered edges and exception flow cross partitions: the worker
        sync must ship cast-filter masks and the master must keep throw
        consumers firing at barriers."""
        program = hub_program(readers=6, elements=4, chain=2)
        seq, par = solve_pair(program, "1objH", workers=2)
        r_seq = AnalysisResult(seq, "1objH")
        r_par = AnalysisResult(par, "1objH")
        assert set(r_par.iter_fld_points_to()) == set(r_seq.iter_fld_points_to())
        assert set(r_par.iter_throw_points_to()) == set(
            r_seq.iter_throw_points_to()
        )

    def test_three_workers_on_small_graph(self):
        """More workers than the graph meaningfully supports still
        converges (some partitions just run dry)."""
        program = hub_program(readers=4, elements=3, chain=2)
        seq, par = solve_pair(program, "insens", workers=3)
        assert par.tuple_count == seq.tuple_count

    def test_sequential_fallback_matches(self):
        """With a huge min_round_nodes the parallel solver never spawns a
        worker and must still produce the identical solution."""
        program = hub_program()
        facts = encode_program(program)
        policy = policy_by_name("2objH", alloc_class_of=facts.alloc_class_of)
        seq = solve(program, policy, facts=facts)
        par = ParallelPointsToSolver(
            program, policy, facts=facts, workers=2, min_round_nodes=1 << 30
        ).solve()
        assert par.tuple_count == seq.tuple_count

    def test_rounds_counter_reports_barriers(self):
        program = hub_program()
        facts = encode_program(program)
        policy = policy_by_name("2objH", alloc_class_of=facts.alloc_class_of)
        solver = ParallelPointsToSolver(
            program, policy, facts=facts, workers=2, min_round_nodes=0
        )
        solver.solve()
        assert solver.rounds >= 1


class TestParallelBudget:
    def test_budget_cutoff_identical_to_sequential(self):
        """Satellite regression: BudgetExceeded aggregates worker-admitted
        tuples with exactly the single-process cutoff.  The derived-tuple
        total is order-independent and the master charges each admission
        once after dedup, so a budget of total - 1 must trip at exactly
        ``total`` no matter how rounds interleave."""
        program = hub_program()
        facts = encode_program(program)
        policy = policy_by_name("2objH", alloc_class_of=facts.alloc_class_of)
        total = solve(program, policy, facts=facts).tuple_count
        with pytest.raises(BudgetExceeded) as info:
            parallel_solve(
                program,
                policy,
                facts=facts,
                workers=2,
                min_round_nodes=0,
                max_tuples=total - 1,
            )
        assert info.value.tuples == total
        # And a budget of exactly the total must not trip.
        raw = parallel_solve(
            program,
            policy,
            facts=facts,
            workers=2,
            min_round_nodes=0,
            max_tuples=total,
        )
        assert raw.tuple_count == total

    def test_workers_terminated_after_budget_trip(self):
        program = hub_program()
        facts = encode_program(program)
        policy = policy_by_name("2objH", alloc_class_of=facts.alloc_class_of)
        solver = ParallelPointsToSolver(
            program,
            policy,
            facts=facts,
            workers=2,
            min_round_nodes=0,
            max_tuples=100,
        )
        with pytest.raises(BudgetExceeded):
            solver.solve()
        # The pool must not leak processes past solve().
        import multiprocessing

        assert not [
            p for p in multiprocessing.active_children() if p.is_alive()
        ]

    def test_invalid_worker_count_rejected(self):
        program = hub_program(readers=2, elements=2, chain=1)
        facts = encode_program(program)
        policy = policy_by_name("insens", alloc_class_of=facts.alloc_class_of)
        with pytest.raises(ValueError):
            ParallelPointsToSolver(program, policy, facts=facts, workers=0)
