"""Tests for context interning."""

from hypothesis import given
from hypothesis import strategies as st

from repro.contexts import EMPTY, ContextTable


class TestContextTable:
    def test_empty_is_id_zero(self):
        t = ContextTable()
        assert t.empty_id == 0
        assert t.intern(EMPTY) == 0
        assert t.value(0) == EMPTY

    def test_intern_is_idempotent(self):
        t = ContextTable()
        a = t.intern(("h1",))
        b = t.intern(("h1",))
        assert a == b
        assert len(t) == 2

    def test_distinct_values_distinct_ids(self):
        t = ContextTable()
        ids = {t.intern(("h", i)) for i in range(10)}
        assert len(ids) == 10

    def test_contains(self):
        t = ContextTable()
        t.intern(("x",))
        assert ("x",) in t
        assert ("y",) not in t


contexts = st.lists(
    st.tuples(st.sampled_from(["h1", "h2", "i1", "T"]), st.integers(0, 3)).map(
        lambda p: (f"{p[0]}/{p[1]}",)
    )
    | st.just(EMPTY),
    max_size=50,
)


@given(contexts)
def test_roundtrip_property(values):
    t = ContextTable()
    ids = [t.intern(v) for v in values]
    for v, i in zip(values, ids):
        assert t.value(i) == v
        assert t.intern(v) == i  # stable
    # ids are dense
    assert max(ids, default=0) < len(t)
