"""Tests for the RECORD/MERGE constructor policies.

Checks each flavor against the definitional table of
[Smaragdakis, Bravenboer & Lhoták, POPL 2011] (see the module docstring of
repro.contexts.policies).
"""

import pytest

from repro.contexts import (
    EMPTY,
    CallSiteSensitivePolicy,
    HybridObjectPolicy,
    InsensitivePolicy,
    ObjectSensitivePolicy,
    TypeSensitivePolicy,
    policy_by_name,
)


class TestInsensitive:
    def test_all_constructors_return_star(self):
        p = InsensitivePolicy()
        assert p.record("h", ("x",)) == EMPTY
        assert p.merge("h", ("x",), "i", "m", ("y",)) == EMPTY
        assert p.merge_static("i", "m", ("y",)) == EMPTY
        assert p.initial_context() == EMPTY


class TestCallSite:
    def test_merge_pushes_call_site(self):
        p = CallSiteSensitivePolicy(k=2, heap_k=1)
        assert p.merge("h", EMPTY, "site1", "m", EMPTY) == ("site1",)
        assert p.merge("h", EMPTY, "site2", "m", ("site1",)) == ("site2", "site1")

    def test_merge_truncates_to_k(self):
        p = CallSiteSensitivePolicy(k=2, heap_k=1)
        ctx = p.merge("h", EMPTY, "s3", "m", ("s2", "s1"))
        assert ctx == ("s3", "s2")

    def test_static_calls_treated_like_virtual(self):
        p = CallSiteSensitivePolicy(k=2, heap_k=1)
        assert p.merge_static("s", "m", ("x",)) == ("s", "x")

    def test_record_truncates_caller_context(self):
        p = CallSiteSensitivePolicy(k=2, heap_k=1)
        assert p.record("h", ("s2", "s1")) == ("s2",)
        assert p.record("h", EMPTY) == EMPTY

    def test_heap_k_zero_is_context_insensitive_heap(self):
        p = CallSiteSensitivePolicy(k=1, heap_k=0)
        assert p.record("h", ("s1",)) == EMPTY

    def test_names(self):
        assert CallSiteSensitivePolicy(k=2, heap_k=1).name == "2callH"
        assert CallSiteSensitivePolicy(k=1, heap_k=0).name == "1call"

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            CallSiteSensitivePolicy(k=0)
        with pytest.raises(ValueError):
            CallSiteSensitivePolicy(k=1, heap_k=-1)


class TestObjectSensitive:
    def test_merge_pushes_receiver_heap(self):
        p = ObjectSensitivePolicy(k=2, heap_k=1)
        assert p.merge("recv", EMPTY, "i", "m", ("caller",)) == ("recv",)
        assert p.merge("recv", ("alloc",), "i", "m", EMPTY) == ("recv", "alloc")

    def test_merge_ignores_call_site_and_caller(self):
        p = ObjectSensitivePolicy(k=2, heap_k=1)
        a = p.merge("recv", ("h",), "site1", "m", ("c1",))
        b = p.merge("recv", ("h",), "site2", "m", ("c2",))
        assert a == b == ("recv", "h")

    def test_static_calls_inherit_caller_context(self):
        p = ObjectSensitivePolicy(k=2, heap_k=1)
        assert p.merge_static("i", "m", ("recv", "h")) == ("recv", "h")

    def test_record_is_caller_context_prefix(self):
        p = ObjectSensitivePolicy(k=2, heap_k=1)
        assert p.record("h", ("recv", "alloc")) == ("recv",)

    def test_name(self):
        assert ObjectSensitivePolicy(k=2, heap_k=1).name == "2objH"


class TestTypeSensitive:
    def test_merge_coarsens_to_allocating_class(self):
        p = TypeSensitivePolicy({"h1": "ClassA", "h2": "ClassA"}.__getitem__, k=2)
        a = p.merge("h1", EMPTY, "i", "m", EMPTY)
        b = p.merge("h2", EMPTY, "i", "m", EMPTY)
        assert a == b == ("ClassA",)

    def test_distinct_classes_distinct_contexts(self):
        p = TypeSensitivePolicy({"h1": "A", "h2": "B"}.__getitem__, k=2)
        assert p.merge("h1", EMPTY, "i", "m", EMPTY) != p.merge(
            "h2", EMPTY, "i", "m", EMPTY
        )

    def test_record_like_object_sensitivity(self):
        p = TypeSensitivePolicy(lambda h: "A", k=2, heap_k=1)
        assert p.record("h", ("A", "B")) == ("A",)

    def test_name(self):
        assert TypeSensitivePolicy(lambda h: "A", k=2, heap_k=1).name == "2typeH"


class TestHybrid:
    def test_virtual_like_object_sensitive(self):
        p = HybridObjectPolicy(k=2, heap_k=1)
        assert p.merge("recv", ("h",), "i", "m", ("c",)) == ("recv", "h")

    def test_static_pushes_call_site(self):
        p = HybridObjectPolicy(k=2, heap_k=1)
        assert p.merge_static("site", "m", ("recv", "h")) == ("site", "recv")


class TestPolicyByName:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("insens", InsensitivePolicy),
            ("2objH", ObjectSensitivePolicy),
            ("1objH", ObjectSensitivePolicy),
            ("2callH", CallSiteSensitivePolicy),
            ("1callH", CallSiteSensitivePolicy),
            ("2objH+hybrid", HybridObjectPolicy),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(policy_by_name(name), cls)

    def test_type_sensitive_needs_alloc_class(self):
        with pytest.raises(ValueError, match="alloc_class_of"):
            policy_by_name("2typeH")
        policy = policy_by_name("2typeH", alloc_class_of=lambda h: "A")
        assert isinstance(policy, TypeSensitivePolicy)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown analysis"):
            policy_by_name("deepobj")
        with pytest.raises(ValueError, match="unknown analysis"):
            policy_by_name("objH")

    def test_generalized_grammar(self):
        p = policy_by_name("3objH2")
        assert isinstance(p, ObjectSensitivePolicy)
        assert (p.k, p.heap_k) == (3, 2)
        assert p.name == "3objH2"
        p = policy_by_name("1call")
        assert (p.k, p.heap_k) == (1, 0)
        assert p.name == "1call"
        p = policy_by_name("4callH")
        assert (p.k, p.heap_k) == (4, 1)
        p = policy_by_name("3objH+hybrid")
        assert isinstance(p, HybridObjectPolicy)
        assert p.name == "3objH+hybrid"

    def test_hybrid_only_for_objects(self):
        with pytest.raises(ValueError, match="object-sensitivity only"):
            policy_by_name("2callH+hybrid")

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError, match="k >= 1"):
            policy_by_name("0objH")

    def test_deeper_contexts_at_least_as_precise(self):
        """3objH separates what 2objH separates on a two-level factory."""
        from repro import ProgramBuilder, analyze

        b = ProgramBuilder()
        b.klass("Inner")
        b.klass("Outer")
        with b.method("Inner", "make", []) as m:
            m.alloc("p", "java.lang.Object")
            m.ret("p")
        with b.method("Outer", "produce", ["inner"]) as m:
            m.vcall("inner", "make", [], target="x")
            m.ret("x")
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("inner", "Inner")
            for i in range(2):
                m.alloc(f"o{i}", "Outer")
                m.vcall(f"o{i}", "produce", ["inner"], target=f"r{i}")
        program = b.build(entry="Main.main/0")
        shallow = analyze(program, "2objH")
        deep = analyze(program, "3objH2")
        # the single Inner.make alloc is shared either way, but contexts
        # must at least not lose precision
        for var in ("Main.main/0/r0", "Main.main/0/r1"):
            assert deep.points_to(var) <= shallow.points_to(var)
