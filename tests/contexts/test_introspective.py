"""Tests for the introspective dual policy and refinement decisions."""

from repro.contexts import (
    EMPTY,
    InsensitivePolicy,
    IntrospectivePolicy,
    ObjectSensitivePolicy,
    RefinementDecision,
)


class TestRefinementDecision:
    def test_default_refines_everything(self):
        d = RefinementDecision()
        assert d.refine_object("any-heap")
        assert d.refine_site("any-invo", "any-meth")

    def test_exclusions(self):
        d = RefinementDecision(
            excluded_objects={"h1"}, excluded_sites={("i1", "m1")}
        )
        assert not d.refine_object("h1")
        assert d.refine_object("h2")
        assert not d.refine_site("i1", "m1")
        assert d.refine_site("i1", "m2")  # pair-specific, as in SITETOREFINE
        assert d.refine_site("i2", "m1")

    def test_positive_polarity_constructor(self):
        d = RefinementDecision.refine_nothing_but(
            all_objects={"h1", "h2", "h3"},
            all_sites={("i1", "m"), ("i2", "m")},
            objects_to_refine={"h1"},
            sites_to_refine={("i2", "m")},
        )
        assert d.refine_object("h1")
        assert not d.refine_object("h2")
        assert not d.refine_object("h3")
        assert not d.refine_site("i1", "m")
        assert d.refine_site("i2", "m")

    def test_refine_everything_classmethod(self):
        d = RefinementDecision.refine_everything()
        assert d.excluded_objects == frozenset()
        assert d.excluded_sites == frozenset()


class TestIntrospectivePolicy:
    def make(self):
        refined = ObjectSensitivePolicy(k=2, heap_k=1)
        decision = RefinementDecision(
            excluded_objects={"cheap-heap"},
            excluded_sites={("cheap-site", "m")},
        )
        return IntrospectivePolicy(refined, decision)

    def test_record_dispatch(self):
        p = self.make()
        # refined object: object-sensitive record
        assert p.record("hot-heap", ("ctx",)) == ("ctx",)
        # excluded object: insensitive record
        assert p.record("cheap-heap", ("ctx",)) == EMPTY

    def test_merge_dispatch(self):
        p = self.make()
        assert p.merge("recv", ("h",), "hot-site", "m", EMPTY) == ("recv", "h")
        assert p.merge("recv", ("h",), "cheap-site", "m", EMPTY) == EMPTY

    def test_merge_static_dispatch(self):
        p = self.make()
        # object-sensitive static merge inherits the caller context
        assert p.merge_static("hot-site", "m", ("c",)) == ("c",)
        assert p.merge_static("cheap-site", "m", ("c",)) == EMPTY

    def test_custom_cheap_policy(self):
        refined = ObjectSensitivePolicy(k=2, heap_k=1)
        cheap = ObjectSensitivePolicy(k=1, heap_k=0)
        p = IntrospectivePolicy(
            refined,
            RefinementDecision(excluded_objects={"x"}, excluded_sites=set()),
            cheap=cheap,
        )
        # cheap is 1obj: merge keeps only the receiver
        assert p.merge("recv", ("h",), "i", "m", EMPTY) == ("recv", "h")

    def test_name(self):
        assert self.make().name == "2objH-intro"

    def test_from_exclusions(self):
        p = IntrospectivePolicy.from_exclusions(
            ObjectSensitivePolicy(),
            excluded_objects={"h"},
            excluded_sites=set(),
        )
        assert not p.decision.refine_object("h")

    def test_from_refinements(self):
        p = IntrospectivePolicy.from_refinements(
            ObjectSensitivePolicy(),
            all_objects={"h1", "h2"},
            all_sites=set(),
            objects_to_refine={"h1"},
            sites_to_refine=set(),
        )
        assert p.decision.refine_object("h1")
        assert not p.decision.refine_object("h2")

    def test_mixed_contexts_compose(self):
        """Contexts produced by the cheap constructor flow through the
        refined one (and vice versa) without error — the uniform tuple
        representation of repro.contexts.abstractions."""
        p = self.make()
        cheap_hctx = p.record("cheap-heap", ("anything",))  # EMPTY
        refined_ctx = p.merge("recv", cheap_hctx, "hot-site", "m", EMPTY)
        assert refined_ctx == ("recv",)
        cheap_ctx = p.merge("recv", refined_ctx, "cheap-site", "m", refined_ctx)
        assert cheap_ctx == EMPTY
