"""Tests for Heuristics A and B and the custom-heuristic combinator."""

import pytest

from repro import ProgramBuilder, analyze, encode_program
from repro.introspection import (
    CustomHeuristic,
    HeuristicA,
    HeuristicB,
    RefineEverything,
    call_site_universe,
    compute_metrics,
    object_universe,
)


@pytest.fixture(scope="module")
def hub_setup():
    """A small hub program with one obviously-hot method and object."""
    b = ProgramBuilder()
    b.klass("Hub", fields=["slot"])
    b.klass("Elem", abstract=True)
    for e in range(12):
        b.klass(f"Elem{e}", super_name="Elem")
    with b.method("Hub", "add", ["x"]) as m:
        m.store("this", "slot", "x")
    with b.method("Hub", "get", []) as m:
        m.load("r", "this", "slot")
        m.move("r2", "r")
        m.move("r3", "r2")
        m.ret("r3")
    with b.method("Main", "main", [], static=True) as m:
        m.alloc("hub", "Hub")
        for e in range(12):
            m.alloc(f"e{e}", f"Elem{e}")
            m.vcall("hub", "add", [f"e{e}"])
        m.vcall("hub", "get", [], target="out")
    program = b.build(entry="Main.main/0")
    facts = encode_program(program)
    pass1 = analyze(program, "insens", facts=facts)
    metrics = compute_metrics(pass1, facts)
    return program, facts, pass1, metrics


class TestUniverses:
    def test_call_site_universe_is_cg_pairs(self, hub_setup):
        _, _, pass1, _ = hub_setup
        pairs = call_site_universe(pass1)
        assert ("Main.main/0/invo/12", "Hub.get/0") in pairs
        assert all(meth in ("Hub.add/1", "Hub.get/0") for _i, meth in pairs)

    def test_object_universe_is_reachable_allocs(self, hub_setup):
        _, facts, pass1, _ = hub_setup
        objs = object_universe(pass1, facts)
        assert "Main.main/0/new Hub/0" in objs
        assert len(objs) == 13


class TestHeuristicA:
    def test_excludes_popular_objects(self, hub_setup):
        _, facts, pass1, metrics = hub_setup
        # every element is pointed by e{k} + get's r/r2/r3 + out + add's x
        decision = HeuristicA(K=4, L=10**6, M=10**6).decide(metrics, facts, pass1)
        assert all("Elem" in h for h in decision.excluded_objects)
        assert decision.excluded_objects  # elements are popular

    def test_excludes_high_inflow_sites(self, hub_setup):
        _, facts, pass1, metrics = hub_setup
        # add(x): in-flow 1 per site; get(): in-flow 0 -> L=0 excludes add
        decision = HeuristicA(K=10**6, L=0, M=10**6).decide(metrics, facts, pass1)
        excluded_meths = {meth for _i, meth in decision.excluded_sites}
        assert excluded_meths == {"Hub.add/1"}

    def test_excludes_by_max_var_field(self, hub_setup):
        _, facts, pass1, metrics = hub_setup
        # get/add's `this` points to the hub whose slot holds 12 elements
        decision = HeuristicA(K=10**6, L=10**6, M=11).decide(metrics, facts, pass1)
        excluded_meths = {meth for _i, meth in decision.excluded_sites}
        assert excluded_meths == {"Hub.add/1", "Hub.get/0"}

    def test_paper_constants_exclude_nothing_here(self, hub_setup):
        _, facts, pass1, metrics = hub_setup
        decision = HeuristicA().decide(metrics, facts, pass1)  # K=L=100, M=200
        assert not decision.excluded_objects
        assert not decision.excluded_sites

    def test_describe(self):
        assert "K=1" in HeuristicA(K=1, L=2, M=3).describe()


class TestHeuristicB:
    def test_excludes_high_volume_methods(self, hub_setup):
        _, facts, pass1, metrics = hub_setup
        # get has locals this(1) + r,r2,r3 (12 each) = 37
        decision = HeuristicB(P=30, Q=10**6).decide(metrics, facts, pass1)
        excluded_meths = {meth for _i, meth in decision.excluded_sites}
        assert excluded_meths == {"Hub.get/0"}

    def test_excludes_heavy_objects(self, hub_setup):
        _, facts, pass1, metrics = hub_setup
        # hub weight = total_field_pts(12) * pointed_by_vars(hub: hub, this
        # of add, this of get = 3) = 36
        decision = HeuristicB(P=10**6, Q=35).decide(metrics, facts, pass1)
        assert decision.excluded_objects == {"Main.main/0/new Hub/0"}

    def test_paper_constants_exclude_nothing_here(self, hub_setup):
        _, facts, pass1, metrics = hub_setup
        decision = HeuristicB().decide(metrics, facts, pass1)
        assert not decision.excluded_objects
        assert not decision.excluded_sites


class TestCustomAndDegenerate:
    def test_refine_everything(self, hub_setup):
        _, facts, pass1, metrics = hub_setup
        decision = RefineEverything().decide(metrics, facts, pass1)
        assert not decision.excluded_objects and not decision.excluded_sites

    def test_custom_heuristic_single_metric(self, hub_setup):
        _, facts, pass1, metrics = hub_setup
        h = CustomHeuristic(
            exclude_object=lambda heap, m: m.pointed_by_objs.get(heap, 0) > 0,
            exclude_site=lambda invo, meth, m: False,
            label="pointed-by-objs-only",
        )
        decision = h.decide(metrics, facts, pass1)
        # exactly the 12 elements sit in the hub's field
        assert len(decision.excluded_objects) == 12
        assert h.name == "pointed-by-objs-only"
