"""Tests for mixed-flavor configurability (paper Section 3's opening claim).

"The model of the previous section allows configurability of
context-sensitivity in a large variety of ways.  For instance, some
methods (or some call sites) can be analyzed with object-sensitivity
while others are analyzed with call-site-sensitivity, of any depth."

The `IntrospectivePolicy` is exactly that machinery: its *cheap* policy
defaults to insensitive (the paper's experiments) but can be any policy.
These tests exercise object-sensitive/call-site-sensitive mixes and
shallow/deep mixes, on both engines.
"""

import pytest

from repro import ProgramBuilder, analyze, encode_program
from repro.analysis.datalog_model import DatalogPointsToAnalysis
from repro.contexts import (
    CallSiteSensitivePolicy,
    IntrospectivePolicy,
    ObjectSensitivePolicy,
    RefinementDecision,
)
from tests.conftest import build_box_program


@pytest.fixture(scope="module")
def program():
    return build_box_program(boxes=3)


def split_decision(facts, pass1, predicate):
    """Exclude the call-site pairs selected by ``predicate(invo, meth)``."""
    pairs = {
        (invo, meth)
        for invo, targets in pass1.call_graph.items()
        for meth in targets
    }
    return RefinementDecision(
        excluded_objects=set(),
        excluded_sites={(i, m) for i, m in pairs if predicate(i, m)},
    )


class TestObjectPlusCallSite:
    def test_mix_is_as_precise_as_either_flavor_here(self, program):
        """Half the call sites get 2objH contexts, the other half 2callH.
        On the box program either flavor fully separates the boxes, so the
        mix must too — and it must terminate with contexts of both kinds."""
        facts = encode_program(program)
        pass1 = analyze(program, "insens", facts=facts)
        # Deterministic half-split: even positions in sorted call-site
        # order.  (`hash(invo) % 2` is randomized per process by
        # PYTHONHASHSEED and made this test flaky — some splits conflate.)
        invos = sorted(pass1.call_graph)
        even_invos = set(invos[::2])
        decision = split_decision(
            facts, pass1, lambda invo, meth: invo in even_invos
        )
        policy = IntrospectivePolicy(
            refined=ObjectSensitivePolicy(k=2, heap_k=1),
            decision=decision,
            cheap=CallSiteSensitivePolicy(k=2, heap_k=1),
        )
        result = analyze(program, policy, facts=facts)
        for k in range(3):
            assert result.points_to(f"Main.main/0/g{k}") == {
                f"Main.main/0/new Item{k}/{k}"
            }
        # both context kinds are present in the fixpoint
        elements = {
            ctx[0]
            for _m, ctx in result.iter_reachable()
            if ctx
        }
        assert any("invo" in str(e) for e in elements)  # call-site elements
        assert any("new " in str(e) for e in elements)  # allocation elements

    def test_engines_agree_on_mixed_policies(self, program):
        facts = encode_program(program)
        pass1 = analyze(program, "insens", facts=facts)
        decision = split_decision(
            facts, pass1, lambda invo, meth: "get" in meth
        )
        refined = ObjectSensitivePolicy(k=2, heap_k=1)
        cheap = CallSiteSensitivePolicy(k=1, heap_k=1)
        policy = IntrospectivePolicy(refined, decision, cheap=cheap)

        solver = analyze(program, policy, facts=facts)
        model = DatalogPointsToAnalysis(
            program,
            cheap,
            refined_policy=refined,
            facts=facts,
            polarity="complement",
            excluded_sites=decision.excluded_sites,
        ).run()
        assert frozenset(solver.iter_var_points_to()) == model.var_points_to
        assert frozenset(solver.iter_reachable()) == model.reachable


class TestDepthMix:
    def test_shallow_fallback_instead_of_insensitive(self, program):
        """Refine with 2objH but fall back to 1objH (not insens) for the
        excluded sites: precision must sit between full-1objH and
        full-2objH — here all three separate the boxes, so equal."""
        facts = encode_program(program)
        pass1 = analyze(program, "insens", facts=facts)
        decision = split_decision(facts, pass1, lambda i, m: "set" in m)
        policy = IntrospectivePolicy(
            refined=ObjectSensitivePolicy(k=2, heap_k=1),
            decision=decision,
            cheap=ObjectSensitivePolicy(k=1, heap_k=1),
        )
        mixed = analyze(program, policy, facts=facts)
        full = analyze(program, "2objH", facts=facts)
        assert mixed.var_points_to == full.var_points_to

    def test_insensitive_fallback_loses_more(self, program):
        """The same exclusions with an insensitive fallback *do* conflate:
        the choice of cheap policy is a real knob."""
        facts = encode_program(program)
        pass1 = analyze(program, "insens", facts=facts)
        decision = split_decision(
            facts, pass1, lambda i, m: "set" in m or "get" in m
        )
        shallow = analyze(
            program,
            IntrospectivePolicy(
                ObjectSensitivePolicy(k=2, heap_k=1),
                decision,
                cheap=ObjectSensitivePolicy(k=1, heap_k=1),
            ),
            facts=facts,
        )
        insens_fallback = analyze(
            program,
            IntrospectivePolicy(
                ObjectSensitivePolicy(k=2, heap_k=1),
                decision,
            ),
            facts=facts,
        )
        # 1obj fallback still separates receiver objects; insens does not.
        g0_shallow = shallow.points_to("Main.main/0/g0")
        g0_insens = insens_fallback.points_to("Main.main/0/g0")
        assert len(g0_shallow) == 1
        assert len(g0_insens) == 3
