"""Tests for the Section 3 cost metrics: hand-computed values on a small
program, plus fast-path vs Datalog-query equivalence."""

import pytest

from repro import ProgramBuilder, analyze, encode_program
from repro.introspection import compute_metrics, compute_metrics_datalog
from tests.conftest import (
    build_box_program,
    build_kitchen_sink_program,
    build_tiny_program,
)


@pytest.fixture(scope="module")
def metric_setup():
    """A program with known, hand-checkable metric values.

    Main.main: h = new Holder; a = new A; b = new B;
               h.f = a; h.f = b; h.g = a;
               x = h.f;
               id(a) -> u   (static call)
    """
    b = ProgramBuilder()
    b.klass("Holder", fields=["f", "g"])
    b.klass("A")
    b.klass("B")
    with b.method("Util", "id", ["p"], static=True) as m:
        m.ret("p")
    with b.method("Main", "main", [], static=True) as m:
        m.alloc("h", "Holder")
        m.alloc("a", "A")
        m.alloc("b", "B")
        m.store("h", "f", "a")
        m.store("h", "f", "b")
        m.store("h", "g", "a")
        m.load("x", "h", "f")
        m.scall("Util", "id", ["a"], target="u")
    program = b.build(entry="Main.main/0")
    facts = encode_program(program)
    result = analyze(program, "insens", facts=facts)
    return program, facts, result, compute_metrics(result, facts)


H = "Main.main/0/new Holder/0"
A = "Main.main/0/new A/1"
B = "Main.main/0/new B/2"
MAIN = "Main.main/0"
ID = "Util.id/1"


class TestHandComputedValues:
    def test_in_flow(self, metric_setup):
        _, _, _, m = metric_setup
        # one call site, one argument `a` pointing to 1 object
        assert list(m.in_flow.values()) == [1]

    def test_total_pts_volume(self, metric_setup):
        _, _, _, m = metric_setup
        # main: h->1, a->1, b->1, x->2 (f holds A and B), u->1  => 6
        assert m.total_pts_volume[MAIN] == 6
        # id: p->1, ret flows back, so p is its only local with pts
        assert m.total_pts_volume[ID] == 1

    def test_max_var_pts(self, metric_setup):
        _, _, _, m = metric_setup
        assert m.max_var_pts[MAIN] == 2  # x

    def test_field_pts(self, metric_setup):
        _, _, _, m = metric_setup
        # Holder.f -> {A, B}; Holder.g -> {A}
        assert m.max_field_pts[H] == 2
        assert m.total_field_pts[H] == 3
        assert H not in m.pointed_by_objs

    def test_max_var_field_pts(self, metric_setup):
        _, _, _, m = metric_setup
        # main's h points to Holder whose max field pts is 2
        assert m.max_var_field_pts[MAIN] == 2
        # id's locals point only to A (no fields)
        assert ID not in m.max_var_field_pts

    def test_pointed_by_vars(self, metric_setup):
        _, _, _, m = metric_setup
        # A is pointed by: a, x, u, p(id) = 4 vars
        assert m.pointed_by_vars[A] == 4
        # B: b, x
        assert m.pointed_by_vars[B] == 2
        # Holder: h
        assert m.pointed_by_vars[H] == 1

    def test_pointed_by_objs(self, metric_setup):
        _, _, _, m = metric_setup
        # A sits in Holder.f and Holder.g -> 2 object-field pairs
        assert m.pointed_by_objs[A] == 2
        assert m.pointed_by_objs[B] == 1

    def test_object_weight(self, metric_setup):
        _, _, _, m = metric_setup
        assert m.object_weight(H) == 3 * 1
        assert m.object_weight(A) == 0  # A has no fields holding anything

    def test_defaults_are_zero(self, metric_setup):
        _, _, _, m = metric_setup
        assert m.in_flow.get("nonexistent", 0) == 0
        assert m.object_weight("nonexistent") == 0


@pytest.mark.parametrize(
    "builder",
    [build_tiny_program, build_box_program, build_kitchen_sink_program],
    ids=["tiny", "boxes", "kitchen-sink"],
)
def test_fast_path_equals_datalog_queries(builder):
    """compute_metrics (Python folds) and compute_metrics_datalog (the
    paper's aggregation queries) must agree on every metric."""
    program = builder()
    facts = encode_program(program)
    result = analyze(program, "insens", facts=facts)
    fast = compute_metrics(result, facts)
    datalog = compute_metrics_datalog(result, facts)
    for attr in (
        "in_flow",
        "total_pts_volume",
        "max_var_pts",
        "max_field_pts",
        "total_field_pts",
        "max_var_field_pts",
        "pointed_by_vars",
        "pointed_by_objs",
    ):
        assert getattr(fast, attr) == getattr(datalog, attr), attr
