"""Tests for the two-pass introspective driver: the sandwich property,
degenerate equivalences, refinement statistics, and budget handling."""

import time

import pytest

from repro import BudgetExceeded, analyze, encode_program
from repro.benchgen.generator import generate
from repro.benchgen.spec import BenchmarkSpec, HubSpec
from repro.clients import measure_precision
from repro.introspection import (
    CustomHeuristic,
    HeuristicA,
    HeuristicB,
    RefineEverything,
    run_introspective,
)
from repro.introspection.driver import MIN_PASS2_SECONDS
from tests.conftest import build_box_program


def vpt(result):
    return frozenset(result.iter_var_points_to())


@pytest.fixture(scope="module")
def setup():
    program = build_box_program(boxes=4)
    facts = encode_program(program)
    insens = analyze(program, "insens", facts=facts)
    full = analyze(program, "2objH", facts=facts)
    return program, facts, insens, full


class TestDegenerateEquivalences:
    def test_refine_everything_equals_full_analysis(self, setup):
        program, facts, _insens, full = setup
        out = run_introspective(program, "2objH", RefineEverything(), facts=facts)
        assert vpt(out.result) == vpt(full)

    def test_exclude_everything_equals_insensitive(self, setup):
        program, facts, insens, _full = setup
        exclude_all = CustomHeuristic(
            exclude_object=lambda h, m: True,
            exclude_site=lambda i, me, m: True,
            label="all",
        )
        out = run_introspective(program, "2objH", exclude_all, facts=facts)
        assert vpt(out.result) == vpt(insens)


class TestSandwich:
    @pytest.mark.parametrize("flavor", ["2objH", "2callH", "2typeH"])
    def test_projection_sandwich(self, setup, flavor):
        """insens >= intro >= full on var-points-to projections."""
        program, facts, insens, _ = setup
        full = analyze(program, flavor, facts=facts)
        out = run_introspective(
            program,
            flavor,
            CustomHeuristic(
                exclude_object=lambda h, m: "BoxFactory0" in h,
                exclude_site=lambda i, me, m: False,
                label="one-box",
            ),
            facts=facts,
        )
        intro_proj = out.result.var_points_to
        insens_proj = insens.var_points_to
        full_proj = full.var_points_to
        for var, heaps in intro_proj.items():
            assert heaps <= insens_proj.get(var, set())
        for var, heaps in full_proj.items():
            assert heaps <= intro_proj.get(var, set())

    def test_excluding_one_object_loses_nothing_here(self, setup):
        """Excluding only box0's allocation keeps full precision: the
        *calling* contexts of set/get still separate the boxes (only the
        heap context is coarsened, and field-points-to stays keyed by the
        box's distinct allocation site)."""
        program, facts, _insens, full = setup
        out = run_introspective(
            program,
            "2objH",
            CustomHeuristic(
                exclude_object=lambda h, m: "BoxFactory0" in h,
                exclude_site=lambda i, me, m: False,
                label="one-box",
            ),
            facts=facts,
        )
        assert (
            measure_precision(out.result, facts).casts_may_fail
            == measure_precision(full, facts).casts_may_fail
            == 0
        )

    def test_partial_site_exclusion_partial_precision(self, setup):
        """Excluding the set/get call sites of boxes 0 and 1 merges exactly
        those two boxes at the ★ context: their two casts may fail, the
        other boxes stay precise — the per-element selectivity that makes
        introspective analysis work."""
        program, facts, insens, full = setup
        # main emits, per box k: scall make (invo 3k), vcall set (3k+1),
        # vcall get (3k+2).  Exclude set/get of boxes 0 and 1.
        excluded_invos = {
            f"Main.main/0/invo/{i}" for i in (1, 2, 4, 5)
        }
        out = run_introspective(
            program,
            "2objH",
            CustomHeuristic(
                exclude_object=lambda h, m: False,
                exclude_site=lambda i, me, m: i in excluded_invos,
                label="two-boxes",
            ),
            facts=facts,
        )
        p_intro = measure_precision(out.result, facts)
        p_insens = measure_precision(insens, facts)
        p_full = measure_precision(full, facts)
        assert p_full.casts_may_fail == 0
        assert p_intro.casts_may_fail == 2
        assert p_insens.casts_may_fail == 4


class TestOutcomeBookkeeping:
    def test_refinement_stats(self, setup):
        program, facts, _insens, _full = setup
        out = run_introspective(
            program,
            "2objH",
            CustomHeuristic(
                exclude_object=lambda h, m: "BoxFactory0" in h,
                exclude_site=lambda i, me, m: "invo/0" in i,
                label="bits",
            ),
            facts=facts,
        )
        stats = out.refinement_stats
        assert stats.excluded_objects == 1
        assert stats.excluded_call_sites == 1
        assert 0 < stats.object_percent < 100
        assert 0 < stats.call_site_percent < 100

    def test_outcome_name(self, setup):
        program, facts, _, _ = setup
        out = run_introspective(program, "2objH", HeuristicA(), facts=facts)
        assert out.name == "2objH-IntroA"
        out_b = run_introspective(program, "2typeH", HeuristicB(), facts=facts)
        assert out_b.name == "2typeH-IntroB"

    def test_pass1_reuse(self, setup):
        program, facts, insens, _ = setup
        out = run_introspective(
            program, "2objH", HeuristicA(), facts=facts, pass1=insens
        )
        assert out.pass1 is insens
        assert out.pass1_reused is True
        # A supplied pass 1 cost this run nothing; reporting wall time
        # spent validating the argument would masquerade as compute time.
        assert out.pass1_seconds == 0.0

    def test_fresh_pass1_reports_compute_time(self, setup):
        program, facts, _insens, _full = setup
        out = run_introspective(program, "2objH", HeuristicA(), facts=facts)
        assert out.pass1_reused is False
        assert out.pass1_seconds > 0.0

    def test_default_heuristic_is_a(self, setup):
        program, facts, _, _ = setup
        out = run_introspective(program, "2objH", facts=facts)
        assert out.heuristic_name == "A"

    def test_timings_recorded(self, setup):
        program, facts, _, _ = setup
        out = run_introspective(program, "2objH", HeuristicB(), facts=facts)
        assert out.seconds >= 0
        assert out.overhead_seconds >= 0
        assert not out.timed_out


class TestBudgets:
    def test_pass2_budget_trip_reported(self, setup):
        program, facts, insens, _ = setup
        out = run_introspective(
            program,
            "2objH",
            RefineEverything(),
            facts=facts,
            pass1=insens,
            max_tuples=10,
        )
        assert out.timed_out
        assert out.result is None

    def test_pass1_budget_trip_reraises(self, setup):
        program, facts, _, _ = setup
        with pytest.raises(BudgetExceeded):
            run_introspective(program, "2objH", HeuristicA(), facts=facts, max_tuples=10)

class TestSharedWallClockBudget:
    """``max_seconds`` bounds the *whole* two-pass run.  The old behavior
    handed pass 2 the full budget again, so a job with ``max_seconds=N``
    could burn ~2N before reporting; these tests pin the fix with a
    program big enough that the passes take measurable wall time."""

    @pytest.fixture(scope="class")
    def slow(self):
        spec = BenchmarkSpec(
            name="budget-hub",
            util_classes=12,
            util_methods_per_class=5,
            hubs=(
                HubSpec(
                    readers=200,
                    elements=160,
                    payloads_per_element=80,
                    chain=12,
                    reader_call_sites=2,
                ),
            ),
        )
        program = generate(spec)
        facts = encode_program(program)
        # Calibrate: how long does the insensitive pass take here, now?
        t0 = time.perf_counter()
        analyze(program, "insens", facts=facts)
        pass1_seconds = time.perf_counter() - t0
        return program, facts, pass1_seconds

    def test_pass2_gets_only_the_remaining_budget(self, slow):
        program, facts, pass1_seconds = slow
        # Pass 2 under an exclude-everything heuristic costs about as
        # much as pass 1 (it is the insensitive analysis again, run
        # through the introspective context policy).  A budget of 2x the
        # pass-1 time leaves pass 2 roughly one pass-1-worth of seconds —
        # not enough — so a *shared* budget must report a timeout, while
        # the old resetting budget (a fresh 2x for pass 2 alone) let it
        # finish.
        exclude_all = CustomHeuristic(
            exclude_object=lambda h, m: True,
            exclude_site=lambda i, me, m: True,
            label="all",
        )
        budget = 2.0 * pass1_seconds
        t0 = time.perf_counter()
        out = run_introspective(
            program, "2objH", exclude_all, facts=facts, max_seconds=budget
        )
        elapsed = time.perf_counter() - t0
        assert out.timed_out
        assert out.result is None
        assert out.pass1_reused is False
        assert out.pass1_seconds > 0
        # The whole run stays in the budget's neighborhood — nowhere near
        # the ~2x overrun the resetting budget allowed.
        assert elapsed < 4.0 * budget

    def test_wall_clock_trip_in_pass2_reported_not_raised(self, slow):
        """A pass-2 wall-clock trip is an outcome, not an exception —
        the same contract as a tuple-budget trip.  The epsilon floor
        (MIN_PASS2_SECONDS) means pass 2 always *starts* and trips its
        own budget check cleanly even when pass 1 consumed everything."""
        program, facts, _pass1_seconds = slow
        insens = analyze(program, "insens", facts=facts)
        out = run_introspective(
            program,
            "2objH",
            RefineEverything(),
            facts=facts,
            pass1=insens,
            max_seconds=MIN_PASS2_SECONDS,
        )
        assert out.timed_out
        assert out.result is None

    def test_precomputed_pass1_leaves_full_budget(self, slow):
        program, facts, pass1_seconds = slow
        insens = analyze(program, "insens", facts=facts)
        exclude_all = CustomHeuristic(
            exclude_object=lambda h, m: True,
            exclude_site=lambda i, me, m: True,
            label="all",
        )
        # With pass 1 supplied, pass1_seconds is 0.0 and pass 2 keeps
        # (nearly) the whole allowance — 4x one pass is plenty for the
        # exclude-everything second pass.
        out = run_introspective(
            program,
            "2objH",
            exclude_all,
            facts=facts,
            pass1=insens,
            max_seconds=4.0 * pass1_seconds,
        )
        assert out.pass1_reused is True
        assert out.pass1_seconds == 0.0
        assert not out.timed_out
        assert out.result is not None
