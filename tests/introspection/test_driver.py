"""Tests for the two-pass introspective driver: the sandwich property,
degenerate equivalences, refinement statistics, and budget handling."""

import pytest

from repro import BudgetExceeded, analyze, encode_program
from repro.clients import measure_precision
from repro.introspection import (
    CustomHeuristic,
    HeuristicA,
    HeuristicB,
    RefineEverything,
    run_introspective,
)
from tests.conftest import build_box_program


def vpt(result):
    return frozenset(result.iter_var_points_to())


@pytest.fixture(scope="module")
def setup():
    program = build_box_program(boxes=4)
    facts = encode_program(program)
    insens = analyze(program, "insens", facts=facts)
    full = analyze(program, "2objH", facts=facts)
    return program, facts, insens, full


class TestDegenerateEquivalences:
    def test_refine_everything_equals_full_analysis(self, setup):
        program, facts, _insens, full = setup
        out = run_introspective(program, "2objH", RefineEverything(), facts=facts)
        assert vpt(out.result) == vpt(full)

    def test_exclude_everything_equals_insensitive(self, setup):
        program, facts, insens, _full = setup
        exclude_all = CustomHeuristic(
            exclude_object=lambda h, m: True,
            exclude_site=lambda i, me, m: True,
            label="all",
        )
        out = run_introspective(program, "2objH", exclude_all, facts=facts)
        assert vpt(out.result) == vpt(insens)


class TestSandwich:
    @pytest.mark.parametrize("flavor", ["2objH", "2callH", "2typeH"])
    def test_projection_sandwich(self, setup, flavor):
        """insens >= intro >= full on var-points-to projections."""
        program, facts, insens, _ = setup
        full = analyze(program, flavor, facts=facts)
        out = run_introspective(
            program,
            flavor,
            CustomHeuristic(
                exclude_object=lambda h, m: "BoxFactory0" in h,
                exclude_site=lambda i, me, m: False,
                label="one-box",
            ),
            facts=facts,
        )
        intro_proj = out.result.var_points_to
        insens_proj = insens.var_points_to
        full_proj = full.var_points_to
        for var, heaps in intro_proj.items():
            assert heaps <= insens_proj.get(var, set())
        for var, heaps in full_proj.items():
            assert heaps <= intro_proj.get(var, set())

    def test_excluding_one_object_loses_nothing_here(self, setup):
        """Excluding only box0's allocation keeps full precision: the
        *calling* contexts of set/get still separate the boxes (only the
        heap context is coarsened, and field-points-to stays keyed by the
        box's distinct allocation site)."""
        program, facts, _insens, full = setup
        out = run_introspective(
            program,
            "2objH",
            CustomHeuristic(
                exclude_object=lambda h, m: "BoxFactory0" in h,
                exclude_site=lambda i, me, m: False,
                label="one-box",
            ),
            facts=facts,
        )
        assert (
            measure_precision(out.result, facts).casts_may_fail
            == measure_precision(full, facts).casts_may_fail
            == 0
        )

    def test_partial_site_exclusion_partial_precision(self, setup):
        """Excluding the set/get call sites of boxes 0 and 1 merges exactly
        those two boxes at the ★ context: their two casts may fail, the
        other boxes stay precise — the per-element selectivity that makes
        introspective analysis work."""
        program, facts, insens, full = setup
        # main emits, per box k: scall make (invo 3k), vcall set (3k+1),
        # vcall get (3k+2).  Exclude set/get of boxes 0 and 1.
        excluded_invos = {
            f"Main.main/0/invo/{i}" for i in (1, 2, 4, 5)
        }
        out = run_introspective(
            program,
            "2objH",
            CustomHeuristic(
                exclude_object=lambda h, m: False,
                exclude_site=lambda i, me, m: i in excluded_invos,
                label="two-boxes",
            ),
            facts=facts,
        )
        p_intro = measure_precision(out.result, facts)
        p_insens = measure_precision(insens, facts)
        p_full = measure_precision(full, facts)
        assert p_full.casts_may_fail == 0
        assert p_intro.casts_may_fail == 2
        assert p_insens.casts_may_fail == 4


class TestOutcomeBookkeeping:
    def test_refinement_stats(self, setup):
        program, facts, _insens, _full = setup
        out = run_introspective(
            program,
            "2objH",
            CustomHeuristic(
                exclude_object=lambda h, m: "BoxFactory0" in h,
                exclude_site=lambda i, me, m: "invo/0" in i,
                label="bits",
            ),
            facts=facts,
        )
        stats = out.refinement_stats
        assert stats.excluded_objects == 1
        assert stats.excluded_call_sites == 1
        assert 0 < stats.object_percent < 100
        assert 0 < stats.call_site_percent < 100

    def test_outcome_name(self, setup):
        program, facts, _, _ = setup
        out = run_introspective(program, "2objH", HeuristicA(), facts=facts)
        assert out.name == "2objH-IntroA"
        out_b = run_introspective(program, "2typeH", HeuristicB(), facts=facts)
        assert out_b.name == "2typeH-IntroB"

    def test_pass1_reuse(self, setup):
        program, facts, insens, _ = setup
        out = run_introspective(
            program, "2objH", HeuristicA(), facts=facts, pass1=insens
        )
        assert out.pass1 is insens
        assert out.pass1_seconds < 0.005  # reused, not recomputed

    def test_default_heuristic_is_a(self, setup):
        program, facts, _, _ = setup
        out = run_introspective(program, "2objH", facts=facts)
        assert out.heuristic_name == "A"

    def test_timings_recorded(self, setup):
        program, facts, _, _ = setup
        out = run_introspective(program, "2objH", HeuristicB(), facts=facts)
        assert out.seconds >= 0
        assert out.overhead_seconds >= 0
        assert not out.timed_out


class TestBudgets:
    def test_pass2_budget_trip_reported(self, setup):
        program, facts, insens, _ = setup
        out = run_introspective(
            program,
            "2objH",
            RefineEverything(),
            facts=facts,
            pass1=insens,
            max_tuples=10,
        )
        assert out.timed_out
        assert out.result is None

    def test_pass1_budget_trip_reraises(self, setup):
        program, facts, _, _ = setup
        with pytest.raises(BudgetExceeded):
            run_introspective(program, "2objH", HeuristicA(), facts=facts, max_tuples=10)
