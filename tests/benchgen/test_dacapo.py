"""Tests for the DaCapo-analog suite: availability, determinism, and the
paper's scalability matrix on the extreme benchmarks.

The full matrix (every benchmark x every flavor x every variant) lives in
the benchmark harness; here we verify the distinguishing cases cheaply.
"""

import pytest

from repro import BudgetExceeded, analyze, encode_program
from repro.benchgen import (
    DACAPO_SPECS,
    FIGURE1_BENCHMARKS,
    HARD_BENCHMARKS,
    benchmark_names,
    build_benchmark,
)
from repro.harness import EXPERIMENT_BUDGET


class TestSuiteDefinition:
    def test_all_figure_benchmarks_defined(self):
        for name in FIGURE1_BENCHMARKS:
            assert name in DACAPO_SPECS
        for name in HARD_BENCHMARKS:
            assert name in DACAPO_SPECS

    def test_benchmark_names_sorted(self):
        names = benchmark_names()
        assert names == sorted(names)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            build_benchmark("dacapo-ghost")

    def test_programs_build_and_validate(self):
        # antlr is the smallest: build it fully
        p = build_benchmark("antlr")
        assert p.frozen
        assert p.count_methods() > 100

    def test_generation_deterministic(self):
        a = build_benchmark("lusearch")
        b = build_benchmark("lusearch")
        assert a.summary() == b.summary()


class TestScalabilityMatrix:
    """The distinguishing rows of the paper's timeout matrix."""

    def test_easy_benchmark_scales_everywhere(self):
        p = build_benchmark("antlr")
        facts = encode_program(p)
        for analysis in ("insens", "2objH", "2typeH", "2callH"):
            analyze(p, analysis, facts=facts, max_tuples=EXPERIMENT_BUDGET)

    def test_hsqldb_objH_explodes_typeH_survives(self):
        """The paper's hsqldb row: 2objH times out, 2typeH does not —
        type-sensitivity coarsens the reader contexts to one class."""
        p = build_benchmark("hsqldb")
        facts = encode_program(p)
        analyze(p, "insens", facts=facts, max_tuples=EXPERIMENT_BUDGET)
        analyze(p, "2typeH", facts=facts, max_tuples=EXPERIMENT_BUDGET)
        with pytest.raises(BudgetExceeded):
            analyze(p, "2objH", facts=facts, max_tuples=EXPERIMENT_BUDGET)

    def test_jython_defeats_every_deep_flavor(self):
        p = build_benchmark("jython")
        facts = encode_program(p)
        analyze(p, "insens", facts=facts, max_tuples=EXPERIMENT_BUDGET)
        for analysis in ("2objH", "2typeH", "2callH"):
            with pytest.raises(BudgetExceeded):
                analyze(p, analysis, facts=facts, max_tuples=EXPERIMENT_BUDGET)

    def test_chains_break_callH_only(self):
        """bloat: 2callH times out on the static chains; 2objH is immune."""
        p = build_benchmark("bloat")
        facts = encode_program(p)
        analyze(p, "2objH", facts=facts, max_tuples=EXPERIMENT_BUDGET)
        with pytest.raises(BudgetExceeded):
            analyze(p, "2callH", facts=facts, max_tuples=EXPERIMENT_BUDGET)
