"""Tests for the benchmark generator patterns: structure and the analysis
properties each pattern is designed to exhibit."""

import pytest

from repro import analyze, encode_program
from repro.benchgen import BenchmarkSpec, HubSpec, generate
from repro.clients import measure_precision


def bare_spec(**kwargs):
    defaults = dict(
        name="t",
        util_classes=0,
        strategy_clusters=(),
        box_groups=(),
        sink_groups=(),
        hubs=(),
    )
    defaults.update(kwargs)
    return BenchmarkSpec(**defaults)


class TestBulk:
    def test_bulk_structure(self):
        p = generate(bare_spec(util_classes=4, util_methods_per_class=3))
        assert "U0" in p.classes and "U3" in p.classes
        assert "BulkRegistry" in p.classes
        r = analyze(p, "insens")
        assert "U0.m0/1" in r.reachable_methods

    def test_bulk_is_context_friendly(self):
        """Bulk code must not explode under 2objH (static methods inherit
        the caller's context)."""
        p = generate(bare_spec(util_classes=6, util_methods_per_class=6))
        insens = analyze(p, "insens").stats().tuple_count
        obj = analyze(p, "2objH").stats().tuple_count
        assert obj <= insens * 1.5


class TestStrategyClusters:
    def test_devirt_gap_per_cluster(self):
        p = generate(bare_spec(strategy_clusters=(3, 3)))
        facts = encode_program(p)
        insens = measure_precision(analyze(p, "insens", facts=facts), facts)
        full = measure_precision(analyze(p, "2objH", facts=facts), facts)
        # each cluster's exec-site run() call is spuriously polymorphic
        assert insens.polymorphic_call_sites == 2
        assert full.polymorphic_call_sites == 2  # genuinely poly at the site
        # but the casts are rescued
        assert insens.casts_may_fail == 6
        assert full.casts_may_fail == 0


class TestBoxGroups:
    def test_cast_gap_scales_with_group(self):
        p = generate(bare_spec(box_groups=(5,)))
        facts = encode_program(p)
        insens = measure_precision(analyze(p, "insens", facts=facts), facts)
        full = measure_precision(analyze(p, "2typeH", facts=facts), facts)
        assert insens.casts_may_fail == 5
        assert full.casts_may_fail == 0


class TestSinkStores:
    def test_reach_and_poly_gaps(self):
        p = generate(bare_spec(sink_groups=(4,)))
        facts = encode_program(p)
        insens = analyze(p, "insens", facts=facts)
        full = analyze(p, "2objH", facts=facts)
        pi = measure_precision(insens, facts)
        pf = measure_precision(full, facts)
        # the take/op dispatch is spuriously polymorphic insensitively
        assert pi.polymorphic_call_sites == 1
        assert pf.polymorphic_call_sites == 0
        # the 4 SinkB op/helper pairs are spuriously reachable
        assert pi.reachable_methods - pf.reachable_methods == 8
        for e in range(4):
            assert f"SinkB0_{e}.op/0" in insens.reachable_methods
            assert f"SinkB0_{e}.op/0" not in full.reachable_methods


class TestHub:
    def test_hub_explodes_under_object_sensitivity(self):
        p = generate(bare_spec(hubs=(HubSpec(readers=20, elements=20, chain=6),)))
        insens = analyze(p, "insens").stats().tuple_count
        obj = analyze(p, "2objH").stats().tuple_count
        assert obj > 5 * insens

    def test_single_class_readers_immune_to_type_sensitivity(self):
        p = generate(bare_spec(hubs=(HubSpec(readers=20, elements=20, chain=6),)))
        insens = analyze(p, "insens").stats().tuple_count
        type_s = analyze(p, "2typeH").stats().tuple_count
        assert type_s <= insens * 1.5

    def test_distinct_reader_classes_defeat_type_sensitivity(self):
        p = generate(
            bare_spec(
                hubs=(
                    HubSpec(
                        readers=20,
                        elements=20,
                        chain=6,
                        distinct_reader_classes=True,
                    ),
                )
            )
        )
        insens = analyze(p, "insens").stats().tuple_count
        type_s = analyze(p, "2typeH").stats().tuple_count
        assert type_s > 5 * insens

    def test_call_sites_multiply_call_sensitivity(self):
        one = generate(
            bare_spec(hubs=(HubSpec(readers=10, elements=15, chain=5, reader_call_sites=1),))
        )
        four = generate(
            bare_spec(hubs=(HubSpec(readers=10, elements=15, chain=5, reader_call_sites=4),))
        )
        t1 = analyze(one, "2callH").stats().tuple_count
        t4 = analyze(four, "2callH").stats().tuple_count
        assert t4 > 2.5 * t1

    def test_payload_squaring(self):
        flat = generate(bare_spec(hubs=(HubSpec(readers=10, elements=10, chain=4),)))
        squared = generate(
            bare_spec(
                hubs=(HubSpec(readers=10, elements=10, chain=4, payloads_per_element=5),)
            )
        )
        tf = analyze(flat, "2objH").stats().tuple_count
        ts = analyze(squared, "2objH").stats().tuple_count
        assert ts > 2.5 * tf

    def test_hub_rider_cast_fails_everywhere(self):
        p = generate(bare_spec(hubs=(HubSpec(readers=4, elements=4, chain=2),)))
        facts = encode_program(p)
        for analysis in ("insens", "2objH"):
            report = measure_precision(analyze(p, analysis, facts=facts), facts)
            assert report.casts_may_fail == 1


class TestStaticChains:
    def test_chains_hurt_only_call_site_sensitivity(self):
        p = generate(
            bare_spec(
                static_chain_depth=4,
                static_chain_fanout=5,
                static_chain_payloads=30,
            )
        )
        insens = analyze(p, "insens").stats().tuple_count
        obj = analyze(p, "2objH").stats().tuple_count
        call = analyze(p, "2callH").stats().tuple_count
        assert obj <= insens * 1.2
        assert call > 3 * insens


class TestGeneratorHygiene:
    def test_all_patterns_compose_and_validate(self):
        spec = BenchmarkSpec(
            name="combo",
            util_classes=3,
            util_methods_per_class=3,
            strategy_clusters=(2,),
            box_groups=(2,),
            sink_groups=(2,),
            hubs=(HubSpec(readers=2, elements=2, chain=2),),
            static_chain_depth=2,
            static_chain_fanout=2,
            static_chain_payloads=3,
        )
        p = generate(spec)  # builder validates by default
        r = analyze(p, "insens")
        assert "Main.main/0" in r.reachable_methods

    def test_generation_is_deterministic(self):
        from repro.ir import dump_program

        spec = bare_spec(strategy_clusters=(2,), box_groups=(3,))
        assert dump_program(generate(spec)) == dump_program(generate(spec))

    def test_describe_mentions_knobs(self):
        spec = bare_spec(hubs=(HubSpec(readers=7, elements=9),))
        assert "r=7" in spec.describe() and "e=9" in spec.describe()

class TestExceptionMesh:
    def test_precision_gap(self):
        p = generate(bare_spec(exception_sites=5))
        facts = encode_program(p)
        from repro.clients import analyze_exceptions

        insens = analyze_exceptions(analyze(p, "insens", facts=facts), facts)
        full = analyze_exceptions(analyze(p, "2objH", facts=facts), facts)
        # nothing ever escapes main (the driver has a catch-all) ...
        assert not insens.may_crash and not full.may_crash
        # ... but insensitively, every site spuriously leaks the other
        # tasks\' exceptions into the catch-all
        insens_throwing = sum(1 for h in insens.per_method.values() if h)
        full_throwing = sum(1 for h in full.per_method.values() if h)
        assert full_throwing < insens_throwing
        # and the catch-all is dead code under the precise analysis
        assert any("leftover" in v for v in full.dead_handlers)
        assert not any("leftover" in v for v in insens.dead_handlers)
