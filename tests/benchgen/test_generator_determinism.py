"""The benchmark generator is a pure function of its spec: the same spec
must produce byte-identical IR (printer output), across repeated calls and
across separately constructed spec objects.  The fuzzer's base corpus, the
bench harness, and the result cache's content-addressed keys all rely on
this."""

import dataclasses

import pytest

from repro.benchgen.dacapo import DACAPO_SPECS
from repro.benchgen.generator import generate
from repro.benchgen.spec import BenchmarkSpec, HubSpec
from repro.facts.encoder import encode_program
from repro.fuzz.runner import fuzz_base_specs
from repro.harness.bench import suite_specs
from repro.ir.printer import dump_program

SPECS = {
    f"tiny-{spec.name}": spec for spec in suite_specs("tiny")
}
SPECS.update({f"fuzz-{spec.name}": spec for spec in fuzz_base_specs()})
SPECS["dacapo-antlr"] = DACAPO_SPECS["antlr"]
SPECS["hubbed"] = BenchmarkSpec(
    name="hubbed",
    seed=4,
    util_classes=2,
    util_methods_per_class=2,
    hubs=(HubSpec(readers=2, elements=2, payloads_per_element=1),),
    exception_sites=2,
)


@pytest.mark.parametrize("key", sorted(SPECS))
def test_same_spec_twice_is_byte_identical(key):
    spec = SPECS[key]
    assert dump_program(generate(spec)) == dump_program(generate(spec))


@pytest.mark.parametrize("key", sorted(SPECS))
def test_equal_spec_objects_are_byte_identical(key):
    spec = SPECS[key]
    twin = dataclasses.replace(spec)
    assert spec is not twin
    assert dump_program(generate(spec)) == dump_program(generate(twin))


def test_same_spec_has_same_fact_digest():
    spec = SPECS["fuzz-fuzz-micro"]
    d1 = encode_program(generate(spec)).digest()
    d2 = encode_program(generate(spec)).digest()
    assert d1 == d2


def test_different_structure_differs():
    spec = SPECS["hubbed"]
    bigger = dataclasses.replace(spec, util_classes=spec.util_classes + 1)
    assert dump_program(generate(spec)) != dump_program(generate(bigger))
