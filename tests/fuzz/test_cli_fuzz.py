"""`repro fuzz` exit-code contract (PR 1 conventions: 0 ok, 2 user error
or oracle violation)."""

import json
from pathlib import Path

import pytest

from repro.benchgen.generator import generate
from repro.cli import main
from repro.fuzz import runner as runner_mod
from repro.fuzz.corpus import make_entry, write_entry
from repro.fuzz.oracles import Violation
from repro.fuzz.runner import fuzz_base_specs
from repro.fuzz.sketch import ProgramSketch

CORPUS_DIR = str(Path(__file__).resolve().parents[1] / "corpus")


def test_fuzz_campaign_clean_exits_zero(tmp_path, capsys):
    rc = main(
        [
            "fuzz",
            "--seed",
            "7",
            "--iterations",
            "4",
            "--budget",
            "120",
            "--corpus-dir",
            str(tmp_path / "corpus"),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "no oracle violations" in out
    assert "fuzzed" in out


def test_fuzz_replay_clean_corpus_exits_zero(capsys):
    rc = main(["fuzz", "--replay", CORPUS_DIR])
    out = capsys.readouterr().out
    assert rc == 0
    assert ": ok" in out


def test_fuzz_replay_missing_path_exits_two(tmp_path, capsys):
    rc = main(["fuzz", "--replay", str(tmp_path / "nowhere")])
    assert rc == 2
    assert "no such corpus" in capsys.readouterr().err


def test_fuzz_replay_empty_dir_exits_zero(tmp_path, capsys):
    rc = main(["fuzz", "--replay", str(tmp_path)])
    assert rc == 0
    assert "nothing to replay" in capsys.readouterr().out


def test_fuzz_replay_corrupt_entry_exits_two(tmp_path, capsys):
    bad = tmp_path / "broken.json"
    bad.write_text(json.dumps({"schema": "repro-fuzz-corpus/1"}))
    rc = main(["fuzz", "--replay", str(bad)])
    assert rc == 2
    assert "corrupt corpus entry" in capsys.readouterr().err


def test_fuzz_replay_violation_exits_two_and_names_path(
    tmp_path, capsys, monkeypatch
):
    def always_red(facts, rng):
        return Violation(oracle="digest-invariance", detail="injected")

    monkeypatch.setattr(runner_mod, "check_digest_invariance", always_red)
    sketch = ProgramSketch.from_program(generate(fuzz_base_specs()[0]))
    path = write_entry(
        make_entry(sketch, "digest-invariance", seed=1), str(tmp_path)
    )
    rc = main(["fuzz", "--replay", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 2
    assert "VIOLATION" in out
    assert path in out


def test_fuzz_campaign_violation_prints_repro_path(tmp_path, capsys, monkeypatch):
    def always_red(facts, rng):
        return Violation(oracle="digest-invariance", detail="injected")

    monkeypatch.setattr(runner_mod, "check_digest_invariance", always_red)
    rc = main(
        [
            "fuzz",
            "--seed",
            "7",
            "--iterations",
            "3",
            "--budget",
            "120",
            "--corpus-dir",
            str(tmp_path / "corpus"),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 2
    assert "VIOLATION: digest-invariance" in out
    assert "repro written: " in out
    written = [
        line.split("repro written: ", 1)[1]
        for line in out.splitlines()
        if line.startswith("repro written: ")
    ]
    assert len(written) == 1 and Path(written[0]).is_file()


def test_fuzz_rejects_empty_flavors(capsys):
    rc = main(["fuzz", "--flavors", " , ", "--iterations", "1"])
    assert rc == 2
    assert "--flavors" in capsys.readouterr().err
