"""Corpus entry format: schema validation, content addressing, round-trip."""

import json

import pytest

from repro.benchgen.generator import generate
from repro.fuzz.corpus import (
    CORPUS_SCHEMA,
    entry_filename,
    iter_corpus,
    load_entry,
    make_entry,
    validate_entry,
    write_entry,
)
from repro.fuzz.runner import fuzz_base_specs
from repro.fuzz.sketch import ProgramSketch


@pytest.fixture(scope="module")
def sketch():
    return ProgramSketch.from_program(generate(fuzz_base_specs()[0]))


def test_make_entry_is_valid(sketch):
    entry = make_entry(
        sketch, "engine-equivalence", flavor="2objH", seed=9, description="x"
    )
    validate_entry(entry)
    assert entry["schema"] == CORPUS_SCHEMA


def test_filename_is_content_addressed(sketch):
    entry = make_entry(sketch, "digest-invariance", seed=1)
    name = entry_filename(entry)
    assert name.startswith("digest-invariance-") and name.endswith(".json")
    # Same program, same name; different program, different name.
    assert entry_filename(make_entry(sketch, "digest-invariance", seed=2)) == name
    other = sketch.clone()
    other.methods[0].instructions.pop()
    assert entry_filename(make_entry(other, "digest-invariance", seed=1)) != name


def test_write_then_load_round_trip(sketch, tmp_path):
    entry = make_entry(sketch, "insensitive-containment", flavor="2typeH")
    path = write_entry(entry, str(tmp_path / "corpus"))
    assert load_entry(path) == entry
    assert iter_corpus(str(tmp_path / "corpus")) == [path]


def test_iter_corpus_missing_dir_is_empty(tmp_path):
    assert iter_corpus(str(tmp_path / "nope")) == []


@pytest.mark.parametrize(
    "mangle, message",
    [
        (lambda e: e.update(schema="bogus/9"), "bad schema"),
        (lambda e: e.update(oracle="nope"), "unknown oracle"),
        (lambda e: e.update(flavor=7), "flavor"),
        (lambda e: e.update(seed="seven"), "seed"),
        (lambda e: e.update(program=[]), "program"),
        (lambda e: e["program"].update(entry_points=[]), "entry_points"),
        (
            lambda e: e["program"]["methods"][0]["instructions"].append(
                {"op": "explode"}
            ),
            "unknown instruction",
        ),
    ],
)
def test_validate_entry_rejects_junk(sketch, mangle, message):
    entry = make_entry(sketch, "engine-equivalence", flavor="2objH")
    entry = json.loads(json.dumps(entry))  # deep copy
    mangle(entry)
    with pytest.raises(ValueError, match=message):
        validate_entry(entry)


def test_load_entry_rejects_corrupt_file(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": CORPUS_SCHEMA, "oracle": "nope"}))
    with pytest.raises(ValueError):
        load_entry(str(bad))
