"""The oracle catalogue: every oracle passes on known-good programs and
fires on hand-constructed violations."""

import random

import pytest

from repro import encode_program, policy_by_name
from repro.analysis.datalog_model import DatalogPointsToAnalysis
from repro.analysis.reference_solver import reference_solve
from repro.analysis.results import AnalysisResult
from repro.analysis.solver import solve
from repro.fuzz.oracles import (
    ORACLES,
    Violation,
    check_bitset_equivalence,
    check_digest_invariance,
    check_engine_equivalence,
    check_insensitive_containment,
    check_introspective_bracketing,
    check_trace_transparency,
    check_tuple_budget_exactness,
    reference_relations,
    solver_relations,
)
from repro.introspection import run_introspective
from tests.conftest import build_box_program, build_tiny_program

FLAVORS = ["insens", "2objH", "2typeH", "2callH"]


@pytest.fixture(scope="module")
def box():
    program = build_box_program()
    return program, encode_program(program)


def policy_for(flavor, facts):
    return policy_by_name(flavor, alloc_class_of=facts.alloc_class_of)


@pytest.mark.parametrize("flavor", FLAVORS)
def test_engine_equivalence_holds_on_box(box, flavor):
    program, facts = box
    packed = solver_relations(
        solve(program, policy_for(flavor, facts), facts=facts)
    )
    ref = reference_relations(
        reference_solve(program, policy_for(flavor, facts), facts=facts)
    )
    dl = DatalogPointsToAnalysis(
        program, policy_for(flavor, facts), facts=facts
    ).run()
    datalog = (
        dl.var_points_to,
        dl.fld_points_to,
        dl.call_graph,
        dl.reachable,
        dl.throw_points_to,
    )
    assert check_engine_equivalence(flavor, packed, ref, datalog) is None


def test_engine_equivalence_detects_any_relation_diff(box):
    program, facts = box
    packed = solver_relations(
        solve(program, policy_for("insens", facts), facts=facts)
    )
    for i in range(5):
        tampered = list(packed)
        tampered[i] = tampered[i] | {("bogus", "tuple")}
        v = check_engine_equivalence("insens", packed, tuple(tampered))
        assert isinstance(v, Violation)
        assert v.oracle == "engine-equivalence"
        assert "only-reference" in v.detail


@pytest.mark.parametrize("flavor", ["2objH", "2typeH", "2callH"])
def test_insensitive_containment_holds(box, flavor):
    program, facts = box
    sensitive = AnalysisResult(
        solve(program, policy_for(flavor, facts), facts=facts), flavor
    )
    insens = AnalysisResult(
        solve(program, policy_for("insens", facts), facts=facts), "insens"
    )
    assert check_insensitive_containment(flavor, sensitive, insens) is None


def test_insensitive_containment_detects_extra_heap(box):
    program, facts = box
    insens = AnalysisResult(
        solve(program, policy_for("insens", facts), facts=facts), "insens"
    )
    sensitive = AnalysisResult(
        solve(program, policy_for("2objH", facts), facts=facts), "2objH"
    )
    some_var = next(iter(sensitive.var_points_to))
    sensitive.var_points_to[some_var].add("phantom-heap")
    v = check_insensitive_containment("2objH", sensitive, insens)
    assert v is not None and v.oracle == "insensitive-containment"


@pytest.mark.parametrize("flavor", ["2objH", "2callH"])
def test_introspective_bracketing_holds(box, flavor):
    program, facts = box
    full = AnalysisResult(
        solve(program, policy_for(flavor, facts), facts=facts), flavor
    )
    outcome = run_introspective(program, flavor, facts=facts)
    assert check_introspective_bracketing(flavor, outcome, full) is None


def test_introspective_bracketing_detects_non_bracketed(box):
    program, facts = box
    outcome = run_introspective(program, "2objH", facts=facts)
    # Claim the "full" run is the pass-1 result: pass1 ⊆ intro fails
    # whenever the introspective run is strictly more precise than pass 1,
    # unless they coincide — construct the opposite direction instead:
    # pretend full == pass1 (the least precise); full ⊆ intro must then
    # fail iff intro is strictly tighter somewhere.  To stay deterministic
    # we tamper directly: inject a phantom tuple into the "full" result.
    full = AnalysisResult(
        solve(program, policy_for("2objH", facts), facts=facts), "2objH"
    )
    some_var = next(iter(full.var_points_to))
    full.var_points_to[some_var].add("phantom-heap")
    v = check_introspective_bracketing("2objH", outcome, full)
    assert v is not None and v.oracle == "introspective-bracketing"


def test_bracketing_is_skipped_when_pass2_timed_out(box):
    program, facts = box
    pass1 = AnalysisResult(
        solve(program, policy_for("insens", facts), facts=facts), "insens"
    )
    outcome = run_introspective(
        program, "2objH", facts=facts, pass1=pass1, max_tuples=1
    )
    assert outcome.timed_out and outcome.result is None
    full = AnalysisResult(
        solve(program, policy_for("2objH", facts), facts=facts), "2objH"
    )
    assert check_introspective_bracketing("2objH", outcome, full) is None


def test_digest_invariance_holds(box):
    _program, facts = box
    assert check_digest_invariance(facts, random.Random(0)) is None
    assert check_digest_invariance(facts, random.Random(999)) is None


@pytest.mark.parametrize("flavor", ["insens", "2objH"])
def test_tuple_budget_exactness_holds(box, flavor):
    program, facts = box
    raw = solve(program, policy_for(flavor, facts), facts=facts)
    v = check_tuple_budget_exactness(
        program, policy_for(flavor, facts), facts, raw.tuple_count, flavor
    )
    assert v is None


def test_tuple_budget_exactness_detects_wrong_count(box):
    program, facts = box
    raw = solve(program, policy_for("insens", facts), facts=facts)
    v = check_tuple_budget_exactness(
        program,
        policy_for("insens", facts),
        facts,
        raw.tuple_count - 1,  # wrong "expected": exact budget now raises
        "insens",
    )
    assert v is not None and v.oracle == "tuple-budget-exactness"


def test_catalogue_is_complete_and_described():
    assert set(ORACLES) == {
        "engine-equivalence",
        "insensitive-containment",
        "introspective-bracketing",
        "digest-invariance",
        "tuple-budget-exactness",
        "trace-transparency",
        "incremental-equivalence",
        "bitset-equivalence",
        "demand-equivalence",
    }
    assert all(ORACLES[name] for name in ORACLES)


@pytest.mark.parametrize("flavor", ["insens", "2objH"])
def test_bitset_equivalence_holds(box, flavor):
    program, facts = box
    raw = solve(program, policy_for(flavor, facts), facts=facts)
    ref = reference_relations(
        reference_solve(program, policy_for(flavor, facts), facts=facts)
    )
    v = check_bitset_equivalence(
        program,
        policy_for(flavor, facts),
        facts,
        solver_relations(raw),
        ref,
        flavor=flavor,
        expected_tuples=raw.tuple_count,
    )
    assert v is None


def test_bitset_equivalence_detects_any_relation_diff(box):
    program, facts = box
    raw = solve(program, policy_for("insens", facts), facts=facts)
    packed = solver_relations(raw)
    for i in range(5):
        tampered = list(packed)
        tampered[i] = tampered[i] | {("bogus", "tuple")}
        v = check_bitset_equivalence(
            program,
            policy_for("insens", facts),
            facts,
            tuple(tampered),
            flavor="insens",
        )
        assert v is not None and v.oracle == "bitset-equivalence"
        assert v.engines == ("parallel", "sequential")


def test_bitset_equivalence_detects_tuple_count_drift(box):
    program, facts = box
    raw = solve(program, policy_for("insens", facts), facts=facts)
    v = check_bitset_equivalence(
        program,
        policy_for("insens", facts),
        facts,
        solver_relations(raw),
        flavor="insens",
        expected_tuples=raw.tuple_count + 1,
    )
    assert v is not None and "tuple count diverged" in v.detail


@pytest.mark.parametrize("flavor", FLAVORS)
def test_trace_transparency_holds(box, flavor):
    program, facts = box
    untraced = solver_relations(
        solve(program, policy_for(flavor, facts), facts=facts)
    )
    v = check_trace_transparency(
        program, policy_for(flavor, facts), facts, untraced, flavor=flavor
    )
    assert v is None


def test_trace_transparency_detects_relation_diff(box):
    program, facts = box
    untraced = solver_relations(
        solve(program, policy_for("insens", facts), facts=facts)
    )
    # Corrupt the baseline: drop one VARPOINTSTO tuple.  The traced
    # re-solve now "disagrees", which is exactly what the oracle reports.
    dropped = (frozenset(list(untraced[0])[1:]),) + untraced[1:]
    v = check_trace_transparency(
        program, policy_for("insens", facts), facts, dropped, flavor="insens"
    )
    assert v is not None and v.oracle == "trace-transparency"
    assert "VARPOINTSTO" in v.detail


def test_violation_str_mentions_flavor():
    v = Violation(oracle="engine-equivalence", detail="boom", flavor="2objH")
    assert "2objH" in str(v) and "boom" in str(v)
    v2 = Violation(oracle="digest-invariance", detail="boom")
    assert str(v2).startswith("digest-invariance")


def test_relations_cover_throws():
    program = build_tiny_program()
    facts = encode_program(program)
    packed = solver_relations(
        solve(program, policy_for("insens", facts), facts=facts)
    )
    ref = reference_relations(
        reference_solve(program, policy_for("insens", facts), facts=facts)
    )
    assert len(packed) == 5 and len(ref) == 5
    assert packed == ref


@pytest.mark.parametrize("flavor", FLAVORS)
def test_demand_equivalence_holds(box, flavor):
    from repro import analyze
    from repro.fuzz.oracles import check_demand_equivalence

    program, facts = box
    results = {
        name: analyze(program, name, facts=facts)
        for name in dict.fromkeys(("insens", flavor))
    }
    v = check_demand_equivalence(
        program, facts, results, random.Random(0), sample=8
    )
    assert v is None


def test_demand_equivalence_detects_projection_drift(box):
    from repro import analyze
    from repro.fuzz.oracles import check_demand_equivalence

    program, facts = box
    insens = analyze(program, "insens", facts=facts)
    # Lie to the oracle: claim the insensitive result is the 2objH
    # whole-program answer.  On the box program 2objH is strictly more
    # precise, so some demand answer must differ and the oracle fires.
    results = {"insens": insens, "2objH": insens}
    v = check_demand_equivalence(
        program, facts, results, random.Random(0), sample=64
    )
    assert v is not None and v.oracle == "demand-equivalence"
    assert v.engines == ("demand", "whole-program")
