"""Campaign mechanics: throughput accounting, determinism, replay API."""

import pytest

from repro.benchgen.generator import generate
from repro.fuzz.runner import (
    DEEP_FLAVORS,
    FuzzConfig,
    fuzz_base_specs,
    replay_corpus,
    replay_entry,
    run_campaign,
    run_single_check,
)
from repro.fuzz.corpus import make_entry, write_entry
from repro.fuzz.sketch import ProgramSketch


def small_config(**overrides):
    base = dict(
        seed=3,
        budget_seconds=120.0,
        max_iterations=6,
        corpus_dir=None,
    )
    base.update(overrides)
    return FuzzConfig(**base)


def test_campaign_runs_clean_and_counts(tmp_path):
    outcome = run_campaign(small_config())
    assert outcome.ok
    s = outcome.stats
    assert s.programs + s.invalid_mutants + s.budget_skips == 6
    assert s.programs >= 4
    # every program ran all three engines on every flavor (insens + 3 deep)
    assert s.engine_runs >= s.programs * 3 * (1 + len(DEEP_FLAVORS))
    assert s.oracle_checks["digest-invariance"] == s.programs
    assert s.oracle_checks["engine-equivalence"] == s.programs * 4
    assert s.seconds > 0


def test_datalog_rotate_drops_to_one_datalog_run_per_program():
    full = run_campaign(small_config())
    rotated = run_campaign(small_config(datalog_rotate=True))
    assert rotated.ok and full.ok
    # The schedule knob must not change what gets fuzzed or checked...
    assert rotated.stats.programs == full.stats.programs
    assert rotated.stats.oracle_checks == full.stats.oracle_checks
    # ...only how many Datalog evaluations pay for it: one rotating run
    # instead of one per flavor (insens + the deep flavors).
    diff = full.stats.engine_runs - rotated.stats.engine_runs
    assert diff == full.stats.programs * len(DEEP_FLAVORS)


def test_campaign_is_deterministic_in_stats():
    a = run_campaign(small_config())
    b = run_campaign(small_config())
    assert a.stats.programs == b.stats.programs
    assert a.stats.oracle_checks == b.stats.oracle_checks


def test_campaign_respects_iteration_cap():
    outcome = run_campaign(small_config(max_iterations=2))
    assert outcome.stats.programs + outcome.stats.invalid_mutants <= 2


def test_base_specs_are_micro():
    for spec in fuzz_base_specs():
        program = generate(spec)
        sketch = ProgramSketch.from_program(program)
        assert sketch.count_instructions() < 400, spec.name


def test_run_single_check_covers_every_oracle(tmp_path):
    sketch = ProgramSketch.from_program(generate(fuzz_base_specs()[0]))
    for oracle, flavor in (
        ("digest-invariance", None),
        ("engine-equivalence", "2objH"),
        ("insensitive-containment", "2objH"),
        ("introspective-bracketing", "2objH"),
        ("tuple-budget-exactness", "insens"),
        ("trace-transparency", "2objH"),
        ("bitset-equivalence", "2objH"),
        ("demand-equivalence", "2objH"),
    ):
        assert run_single_check(sketch, oracle, flavor, seed=1) is None


def test_trace_transparency_runs_on_cadence():
    # iteration % trace_every == 7 schedules the check; 9 iterations with
    # the default cadence of 8 hit it exactly once (iteration 7).
    outcome = run_campaign(small_config(max_iterations=9))
    assert outcome.ok
    assert outcome.stats.oracle_checks.get("trace-transparency", 0) >= 1
    # bitset-equivalence rides its own offset (iteration 2) in the same
    # window, so a short campaign exercises the parallel solver too.
    assert outcome.stats.oracle_checks.get("bitset-equivalence", 0) >= 1
    # ...and demand-equivalence rides offset 4: sliced queries are
    # cross-checked against whole-program projections in the same window.
    assert outcome.stats.oracle_checks.get("demand-equivalence", 0) >= 1


def test_run_single_check_rejects_unknown_oracle():
    sketch = ProgramSketch.from_program(generate(fuzz_base_specs()[0]))
    with pytest.raises(ValueError):
        run_single_check(sketch, "not-an-oracle", None, seed=0)


def test_replay_corpus_returns_pairs(tmp_path):
    sketch = ProgramSketch.from_program(generate(fuzz_base_specs()[1]))
    paths = [
        write_entry(
            make_entry(sketch, oracle, flavor=flavor, seed=5), str(tmp_path)
        )
        for oracle, flavor in (
            ("digest-invariance", None),
            ("engine-equivalence", "2callH"),
        )
    ]
    results = replay_corpus(sorted(paths))
    assert [p for p, _v in results] == sorted(paths)
    assert all(v is None for _p, v in results)
