"""Delta-debugging shrinker: a deliberately broken oracle must minimize
to a tiny, deterministic, replayable counterexample (the ISSUE's
acceptance experiment)."""

import random

import pytest

from repro.benchgen.generator import generate
from repro.fuzz import runner as runner_mod
from repro.fuzz.corpus import load_entry, make_entry, write_entry
from repro.fuzz.oracles import Violation
from repro.fuzz.runner import (
    FuzzConfig,
    fuzz_base_specs,
    replay_entry,
    run_campaign,
)
from repro.fuzz.shrink import shrink_sketch
from repro.fuzz.sketch import ProgramSketch
from repro.ir.instructions import Alloc


def broken_digest_oracle(facts, rng):
    """Injected engine 'bug': every program with an allocation fails."""
    if facts.alloc:
        return Violation(
            oracle="digest-invariance",
            detail=f"injected: {len(facts.alloc)} allocs",
        )
    return None


@pytest.fixture()
def broken_oracle(monkeypatch):
    monkeypatch.setattr(
        runner_mod, "check_digest_invariance", broken_digest_oracle
    )


def campaign(tmp_path, seed=7):
    config = FuzzConfig(
        seed=seed,
        budget_seconds=60.0,
        max_iterations=5,
        corpus_dir=str(tmp_path / "corpus"),
    )
    return config, run_campaign(config)


def test_broken_oracle_yields_shrunk_replayable_repro(broken_oracle, tmp_path):
    _config, outcome = campaign(tmp_path)
    assert not outcome.ok
    assert outcome.violations[0].oracle == "digest-invariance"
    assert len(outcome.corpus_paths) == 1

    entry = load_entry(outcome.corpus_paths[0])
    sketch = ProgramSketch.from_json(entry["program"])
    # The acceptance bound: the minimized counterexample is tiny.
    assert sketch.count_instructions() <= 25
    # While the injected bug is still present, the repro replays red.
    violation = replay_entry(entry)
    assert violation is not None
    assert violation.oracle == "digest-invariance"


def test_shrink_is_deterministic(broken_oracle, tmp_path):
    _c1, first = campaign(tmp_path / "a")
    _c2, second = campaign(tmp_path / "b")
    assert not first.ok and not second.ok
    entry_a = load_entry(first.corpus_paths[0])
    entry_b = load_entry(second.corpus_paths[0])
    assert entry_a["program"] == entry_b["program"]


def test_repro_replays_green_once_bug_is_fixed(tmp_path):
    """Same campaign but WITHOUT the injected bug: replay must be clean."""
    sketch = ProgramSketch.from_program(generate(fuzz_base_specs()[0]))
    entry = make_entry(sketch, "digest-invariance", seed=7)
    path = write_entry(entry, str(tmp_path))
    assert replay_entry(load_entry(path)) is None


def test_shrink_prefers_smallest_program():
    sketch = ProgramSketch.from_program(generate(fuzz_base_specs()[0]))
    start = sketch.count_instructions()

    def has_alloc(candidate):
        candidate.build()
        return any(
            isinstance(i, Alloc)
            for m in candidate.methods
            for i in m.instructions
        )

    shrunk = shrink_sketch(sketch, has_alloc)
    assert shrunk.count_instructions() < start
    assert shrunk.count_instructions() <= 5
    assert has_alloc(shrunk)


def test_shrink_returns_input_when_predicate_fails():
    sketch = ProgramSketch.from_program(generate(fuzz_base_specs()[0]))
    shrunk = shrink_sketch(sketch, lambda s: False)
    assert shrunk.to_json() == sketch.to_json()


def test_shrink_progress_callback_fires():
    sketch = ProgramSketch.from_program(generate(fuzz_base_specs()[0]))
    lines = []

    def always(candidate):
        candidate.build()
        return True

    shrink_sketch(sketch, always, progress=lines.append)
    assert lines and "shrink round" in lines[0]
