"""Every committed regression-corpus entry must replay clean, forever.

New entries written by a fuzzing campaign (locally or by the nightly CI
job) are picked up automatically: the parametrization enumerates
``tests/corpus/*.json`` at collection time.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import iter_corpus, load_entry, validate_entry
from repro.fuzz.runner import replay_entry
from repro.fuzz.sketch import ProgramSketch

CORPUS_DIR = str(Path(__file__).resolve().parents[1] / "corpus")

ENTRIES = iter_corpus(CORPUS_DIR)


def test_corpus_is_seeded():
    """The repository ships at least the two seed regression entries."""
    assert len(ENTRIES) >= 2


@pytest.mark.parametrize("path", ENTRIES, ids=[Path(p).stem for p in ENTRIES])
def test_entry_is_well_formed_and_builds(path):
    entry = load_entry(path)
    validate_entry(entry)
    program = ProgramSketch.from_json(entry["program"]).build()
    assert program.entry_points


@pytest.mark.parametrize("path", ENTRIES, ids=[Path(p).stem for p in ENTRIES])
def test_entry_replays_clean(path):
    violation = replay_entry(load_entry(path))
    assert violation is None, f"{path}: {violation}"
