"""Mutators must be seeded-deterministic and (almost always) validity-
preserving; the builder catches the rest."""

import random

import pytest

from repro.benchgen.generator import generate
from repro.fuzz.mutators import MUTATORS, mutate
from repro.fuzz.runner import fuzz_base_specs
from repro.fuzz.sketch import ProgramSketch
from repro.ir.program import ProgramError
from repro.ir.types import TypeError_
from repro.ir.validate import ValidationError


@pytest.fixture(scope="module")
def base_sketch():
    return ProgramSketch.from_program(generate(fuzz_base_specs()[0]))


def try_build(sketch):
    try:
        sketch.build()
        return True
    except (ProgramError, ValidationError, TypeError_, ValueError, KeyError):
        return False


@pytest.mark.parametrize("name", sorted(MUTATORS))
def test_each_mutator_mostly_preserves_validity(name, base_sketch):
    mutator = MUTATORS[name]
    applied = 0
    built = 0
    for seed in range(12):
        sketch = base_sketch.clone()
        desc = mutator(random.Random(seed), sketch)
        if desc is None:
            continue
        applied += 1
        assert isinstance(desc, str) and desc
        if try_build(sketch):
            built += 1
    # Every mutator must apply to the base corpus at least once, and the
    # overwhelming majority of its mutants must still freeze.
    assert applied > 0, f"{name} never applied"
    assert built >= applied * 3 // 4, f"{name}: {built}/{applied} built"


def test_mutate_returns_trail_and_edits(base_sketch):
    sketch = base_sketch.clone()
    trail = mutate(sketch, random.Random(42), count=3)
    assert 1 <= len(trail) <= 3
    assert all(isinstance(t, str) for t in trail)


def test_mutate_is_deterministic_per_seed(base_sketch):
    a, b = base_sketch.clone(), base_sketch.clone()
    trail_a = mutate(a, random.Random(7), count=3)
    trail_b = mutate(b, random.Random(7), count=3)
    assert trail_a == trail_b
    assert a.to_json() == b.to_json()


def test_mutated_programs_usually_change_the_program(base_sketch):
    changed = 0
    for seed in range(10):
        sketch = base_sketch.clone()
        mutate(sketch, random.Random(seed), count=2)
        if sketch.to_json() != base_sketch.to_json():
            changed += 1
    assert changed >= 8
