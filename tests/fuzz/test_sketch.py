"""Sketch lift/build and JSON round-trips must be semantics-preserving."""

import pytest

from repro import encode_program, policy_by_name
from repro.analysis.solver import solve
from repro.fuzz.oracles import solver_relations
from repro.fuzz.sketch import (
    ProgramSketch,
    instruction_from_json,
    instruction_to_json,
)
from tests.conftest import (
    build_box_program,
    build_kitchen_sink_program,
    build_tiny_program,
)

PROGRAMS = {
    "tiny": build_tiny_program,
    "boxes": build_box_program,
    "kitchen-sink": build_kitchen_sink_program,
}


def relations(program, flavor="2objH"):
    facts = encode_program(program)
    policy = policy_by_name(flavor, alloc_class_of=facts.alloc_class_of)
    return solver_relations(solve(program, policy, facts=facts))


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_lift_and_rebuild_preserves_analysis(name):
    original = PROGRAMS[name]()
    rebuilt = ProgramSketch.from_program(original).build()
    assert relations(rebuilt) == relations(original)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_json_round_trip_preserves_analysis(name):
    original = PROGRAMS[name]()
    sketch = ProgramSketch.from_program(original)
    restored = ProgramSketch.from_json(sketch.to_json())
    assert relations(restored.build()) == relations(original)


def test_clone_is_deep_for_mutation_purposes():
    sketch = ProgramSketch.from_program(build_tiny_program())
    copy = sketch.clone()
    copy.methods[0].instructions.clear()
    copy.entry_points.append("Fake.main/0")
    assert sketch.methods[0].instructions
    assert "Fake.main/0" not in sketch.entry_points


def test_instruction_round_trip_covers_every_op():
    sketch = ProgramSketch.from_program(build_kitchen_sink_program())
    ops = set()
    for m in sketch.methods:
        for instr in m.instructions:
            blob = instruction_to_json(instr)
            ops.add(blob["op"])
            assert instruction_from_json(blob) == instr


def test_instruction_from_json_rejects_junk():
    with pytest.raises(ValueError):
        instruction_from_json({"op": "teleport", "target": "x"})
    with pytest.raises(ValueError):
        instruction_from_json({"op": "alloc", "target": "x"})  # no class


def test_count_instructions_matches_methods():
    sketch = ProgramSketch.from_program(build_tiny_program())
    assert sketch.count_instructions() == sum(
        len(m.instructions) for m in sketch.methods
    )
