"""Every producer appends receipts: bench CLI, fuzz campaigns, service.

The tentpole contract is that the warehouse is fed *everywhere* results
are produced — ``repro bench/fuzz --receipt-dir``, and every completed
uncached service job — and that a fresh receipt plus the committed
``BENCH_*.json`` artifacts score into one trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.fuzz.runner import FuzzConfig, campaign_receipt, run_campaign
from repro.service import AnalysisService, JobSpec, JobState
from repro.warehouse import (
    cells_of,
    iter_receipts,
    load_receipt,
    receipt_from_service_job,
    score,
)

REPO = Path(__file__).resolve().parents[2]


class TestBenchCliReceipts:
    def test_bench_suite_appends_a_scoreable_receipt(self, tmp_path, capsys):
        store = tmp_path / "wh"
        rc = main(
            [
                "bench",
                "--suite", "tiny",
                "--repeat", "1",
                "--flavors", "insens",
                "--output", str(tmp_path / "report.json"),
                "--receipt-dir", str(store),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "receipt appended:" in out
        (path,) = iter_receipts(str(store))
        receipt = load_receipt(path)
        assert receipt["kind"] == "bench-solver"
        assert Path(path).name.startswith("bench-solver-")
        # Fresh producer receipts are stamped, unlike adapted artifacts.
        assert receipt["created_at"] is not None
        assert receipt["provenance"]["git_rev"] is not None
        assert receipt["payload"] == json.loads(
            (tmp_path / "report.json").read_text()
        )
        assert cells_of(receipt)  # binnable

    def test_fresh_receipt_scores_with_committed_artifacts(self, tmp_path, capsys):
        store = tmp_path / "wh"
        rc = main(
            [
                "bench",
                "--suite", "tiny",
                "--repeat", "1",
                "--flavors", "insens",
                "--output", str(tmp_path / "report.json"),
                "--receipt-dir", str(store),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(
            [
                "report",
                str(REPO / "BENCH_solver.json"),
                str(store),
                "--gate", "--max-regression", "99",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "gate passed" in out
        # Both generations are ingested: the legacy artifact and the
        # fresh receipt each contribute their own cells.
        assert "bench-solver:medium:" in out
        assert "bench-solver:tiny:" in out


class TestFuzzCampaignReceipts:
    def test_campaign_receipt_shape(self):
        config = FuzzConfig(seed=11, max_iterations=3, budget_seconds=60.0)
        outcome = run_campaign(config)
        receipt = campaign_receipt(config, outcome)
        assert receipt["kind"] == "fuzz-campaign"
        assert receipt["identity"]["seed"] == 11
        stats = receipt["payload"]["stats"]
        assert stats["programs"] == outcome.stats.programs
        assert stats["engine_runs"] == outcome.stats.engine_runs
        assert receipt["payload"]["violations"] == []
        cells = cells_of(receipt)
        assert [c["unit"] for c in cells] == ["per_second"]
        assert cells[0]["variant"] == "seed=11"

    def test_fuzz_cli_appends_receipt(self, tmp_path, capsys):
        store = tmp_path / "wh"
        rc = main(
            [
                "fuzz",
                "--seed", "7",
                "--iterations", "3",
                "--corpus-dir", str(tmp_path / "corpus"),
                "--receipt-dir", str(store),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "receipt appended:" in out
        (path,) = iter_receipts(str(store))
        receipt = load_receipt(path)
        assert receipt["kind"] == "fuzz-campaign"
        assert receipt["identity"]["seed"] == 7
        assert receipt["payload"]["stats"]["programs"] >= 3


def _run_job(service: AnalysisService, spec: JobSpec, timeout: float = 60.0):
    """Submit one job on a started inline service and wait it to terminal."""
    service.start()
    job = service.submit(spec)
    deadline = time.time() + timeout
    while not job.terminal and time.time() < deadline:
        time.sleep(0.02)
    assert job.terminal, f"job stuck in state {job.state!r}"
    return job


class TestServiceJobReceipts:
    def test_completed_uncached_job_leaves_one_receipt(self, tmp_path):
        store = tmp_path / "wh"
        service = AnalysisService(workers=0, receipt_dir=str(store))
        try:
            job = _run_job(service, JobSpec(benchmark="antlr", analysis="insens"))
            assert job.state == JobState.DONE
            (path,) = iter_receipts(str(store))
            receipt = load_receipt(path)
            assert receipt["kind"] == "service-job"
            assert receipt["identity"] == {
                "analysis": "insens",
                "benchmark": "antlr",
                "introspective": None,
                "source": None,
            }
            assert receipt["payload"]["stats"]["tuple_count"] > 0
            assert receipt["payload"]["cached"] is False
            (cell,) = cells_of(receipt)
            assert cell["unit"] == "per_second"
            assert cell["variant"] == "direct"
            assert cell["value"] > 0

            # The identical resubmission is a cache hit: no second receipt.
            again = _run_job(service, JobSpec(benchmark="antlr", analysis="insens"))
            assert again.state == JobState.DONE
            assert again.cached is True
            assert iter_receipts(str(store)) == [path]
        finally:
            service.stop()

    def test_timeout_job_leaves_no_receipt(self, tmp_path):
        store = tmp_path / "wh"
        service = AnalysisService(workers=0, receipt_dir=str(store))
        try:
            job = _run_job(
                service, JobSpec(benchmark="antlr", analysis="2objH", max_tuples=10)
            )
            assert job.state == JobState.TIMEOUT
            assert iter_receipts(str(store)) == []
        finally:
            service.stop()

    def test_receipt_failure_does_not_fail_the_job(self, tmp_path):
        # Receipts are advisory: a store path that cannot be created
        # (a file stands in its way) must not turn DONE into ERROR.
        blocked = tmp_path / "not-a-dir"
        blocked.write_text("occupied")
        service = AnalysisService(workers=0, receipt_dir=str(blocked))
        try:
            job = _run_job(service, JobSpec(benchmark="antlr", analysis="insens"))
            assert job.state == JobState.DONE
        finally:
            service.stop()

    def test_source_job_identity_uses_facts_digest(self):
        snapshot = {
            "id": "j1",
            "state": "done",
            "cached": False,
            "spec": {"analysis": "2objH", "benchmark": None, "introspective": "A"},
            "queue_seconds": 0.1,
            "run_seconds": 1.0,
            "total_seconds": 1.1,
        }
        result = {
            "stats": {"tuple_count": 1000, "seconds": 0.5},
            "solve_seconds": 0.5,
            "stages": {},
            "facts_digest": "abcdef0123456789",
        }
        receipt = receipt_from_service_job(snapshot, result, created_at=5.0)
        assert receipt["identity"]["source"] == "abcdef012345"
        assert receipt["identity"]["benchmark"] is None
        (cell,) = cells_of(receipt)
        assert cell["benchmark"] == "source:abcdef012345"
        assert cell["variant"] == "introspective-A"
        assert cell["value"] == 2000.0
        # And it scores like any other receipt.
        (scored,) = score([("r.json", receipt)])
        assert scored.kind == "service-job"
