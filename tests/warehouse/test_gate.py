"""The regression gate: threshold semantics and CLI exit codes.

The contract (docs/warehouse.md): a cell whose regression *reaches*
``--max-regression N`` fails — exactly N% fails, N minus any epsilon
passes — and the gate exits 2 naming the offending cell.  The synthetic
values here are binary-exact (0.75, 0.875, 0.8125) so the boundary
assertions are equality checks, not tolerance checks.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.warehouse import adapt, gate_failures, score, trajectory

FLAVOR = "2objH"
CELL = f"bench-solver:small:minihub/{FLAVOR}/packed"


def _report(speedup: float) -> dict:
    """Minimal ``repro-bench-solver/1`` report with one speedup cell."""
    return {
        "schema": "repro-bench-solver/1",
        "suite": "small",
        "flavors": [FLAVOR],
        "engines": ["reference", "packed"],
        "speedups": {f"minihub/{FLAVOR}": speedup},
        "python": "3.11.0",
        "platform": "linux",
        "cpu_count": 4,
        "gc_enabled": True,
    }


def _score(*speedups: float):
    """Score a trajectory of single-cell receipts in ingestion order."""
    receipts = [
        (f"r{i}.json", adapt(_report(s))) for i, s in enumerate(speedups)
    ]
    return receipts, score(receipts)


class TestThresholdBoundary:
    def test_exactly_n_percent_fails(self):
        _, cells = _score(1.0, 0.75)  # exactly -25.0%
        (cell,) = cells
        assert cell.delta_percent == -25.0
        assert cell.regression_percent == 25.0
        failures = gate_failures(cells, 25.0)
        assert [c.name for c in failures] == [CELL]

    def test_epsilon_under_n_percent_passes(self):
        # Same 25.0% regression, threshold a hair higher: under by epsilon.
        _, cells = _score(1.0, 0.75)
        assert gate_failures(cells, 25.0 + 1e-9) == []
        # And a smaller (18.75%, binary-exact) regression under a 25 gate.
        _, cells = _score(1.0, 0.8125)
        (cell,) = cells
        assert cell.regression_percent == 18.75
        assert gate_failures(cells, 25.0) == []

    def test_improvement_never_fails(self):
        _, cells = _score(1.0, 1.5)
        (cell,) = cells
        assert cell.delta_percent == 50.0
        assert cell.regression_percent == 0.0
        assert gate_failures(cells, 0.0) == []

    def test_single_sample_cell_cannot_fail(self):
        # A cell seen once has no trajectory: baseline IS current.
        _, cells = _score(1.0)
        (cell,) = cells
        assert cell.baseline is cell.current
        assert gate_failures(cells, 0.0) == []

    def test_regression_measured_against_earliest_sample(self):
        # Middle sample dips below the gate; trajectory is baseline->latest.
        _, cells = _score(1.0, 0.5, 0.875)
        (cell,) = cells
        assert cell.delta_percent == -12.5
        assert len(cell.samples) == 3
        assert gate_failures(cells, 12.5) == [cell]
        assert gate_failures(cells, 12.5 + 1e-9) == []


class TestGateCli:
    def _write(self, tmp_path, name: str, speedup: float) -> str:
        path = tmp_path / name
        path.write_text(json.dumps(_report(speedup)) + "\n")
        return str(path)

    def test_regression_exits_two_and_names_the_cell(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", 1.0)
        cur = self._write(tmp_path, "cur.json", 0.75)
        rc = main(["report", base, cur, "--gate", "--max-regression", "25"])
        out = capsys.readouterr().out
        assert rc == 2
        assert f"GATE FAILURE: {CELL} regressed 25.00%" in out
        assert "baseline 1.000" in out and "current 0.750" in out
        assert "<< REGRESSION" in out  # marked in the table too

    def test_passing_set_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", 1.0)
        cur = self._write(tmp_path, "cur.json", 0.8125)
        rc = main(["report", base, cur, "--gate", "--max-regression", "25"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "gate passed: no cell regressed >= 25.0% (1 cells)" in out
        assert "GATE FAILURE" not in out

    def test_json_trajectory_records_the_gate_verdict(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", 1.0)
        cur = self._write(tmp_path, "cur.json", 0.75)
        out_json = tmp_path / "trajectory.json"
        rc = main(
            [
                "report", base, cur,
                "--json", str(out_json),
                "--gate", "--max-regression", "25",
            ]
        )
        assert rc == 2
        doc = json.loads(out_json.read_text())
        assert doc["schema"] == "repro-report/1"
        assert [i["path"] for i in doc["inputs"]] == [base, cur]
        assert doc["gate"] == {
            "max_regression_percent": 25.0,
            "passed": False,
            "failures": [CELL],
        }
        (cell,) = doc["cells"]
        assert cell["delta_percent"] == -25.0
        assert cell["regression_percent"] == 25.0
        assert len(cell["samples"]) == 2

    def test_explicit_baseline_pins_the_comparison(self, tmp_path, capsys):
        first = self._write(tmp_path, "a_first.json", 1.0)
        mid = self._write(tmp_path, "b_mid.json", 0.5)
        cur = self._write(tmp_path, "c_cur.json", 0.875)
        # Against the earliest sample: -12.5%, gate at 12.5 fails...
        rc = main(
            ["report", first, mid, cur, "--gate", "--max-regression", "12.5"]
        )
        assert rc == 2
        capsys.readouterr()
        # ...but pinned to the mid receipt the trajectory is +75%.
        rc = main(
            [
                "report", first, mid, cur,
                "--baseline", mid,
                "--gate", "--max-regression", "12.5",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "+75.00" in out

    def test_no_ingestible_receipts_exits_two(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path)])
        assert rc == 2
        assert "no ingestible receipts" in capsys.readouterr().err

    def test_without_gate_reporting_never_fails(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", 1.0)
        cur = self._write(tmp_path, "cur.json", 0.5)
        rc = main(["report", base, cur])
        out = capsys.readouterr().out
        assert rc == 0
        assert "-50.00" in out
        assert "GATE FAILURE" not in out


class TestTrajectoryDocument:
    def test_gate_block_only_present_when_gating(self):
        receipts, cells = _score(1.0, 0.75)
        doc = trajectory(receipts, cells, skipped=[])
        assert "gate" not in doc
        doc = trajectory(receipts, cells, skipped=[], max_regression=30.0)
        assert doc["gate"] == {
            "max_regression_percent": 30.0,
            "passed": True,
            "failures": [],
        }
