"""Schema adapters over the four committed ``BENCH_*.json`` artifacts.

These are the repository's real historical evidence, so the assertions
here are pins, not smoke: exact binned cell counts per artifact, and
geomeans that must agree with the ``geomean_speedup*`` tables the
reports themselves carry (the warehouse recomputes them from raw cells —
agreement is the proof the binning is faithful).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.warehouse import (
    adapt,
    cells_of,
    gate_failures,
    geomeans,
    ingest,
    load_any,
    receipt_digest,
    receipt_from_bench_report,
    score,
)
from repro.warehouse.adapters import BENCH_SCHEMA_KINDS

REPO = Path(__file__).resolve().parents[2]
BENCH_PATHS = [
    str(REPO / name)
    for name in (
        "BENCH_solver.json",
        "BENCH_datalog.json",
        "BENCH_incremental.json",
        "BENCH_parallel.json",
    )
]

#: Pinned shape of each committed artifact once binned into cells:
#: (file, kind, cell count, {geomean group: value}).  The geomean values
#: are the ones the artifacts themselves record — 3 benchmarks x 3
#: flavors per suite, x 4 scaling columns (parallel) or 4 edit kinds
#: (incremental).
COMMITTED = [
    (
        "BENCH_solver.json",
        "bench-solver",
        9,
        {"bench-solver/medium/packed": 3.922},
    ),
    (
        "BENCH_datalog.json",
        "bench-datalog",
        9,
        {"bench-datalog/medium/compiled": 20.424},
    ),
    (
        "BENCH_incremental.json",
        "bench-incremental",
        36,
        {
            "bench-incremental/medium/alloc": 17.102,
            "bench-incremental/medium/move": 16.995,
            "bench-incremental/medium/new-call": 16.5,
            "bench-incremental/medium/new-entry": 16.445,
        },
    ),
    (
        "BENCH_parallel.json",
        "bench-parallel",
        36,
        {
            "bench-parallel/medium/sequential": 4.121,
            "bench-parallel/medium/workers=1": 1.948,
            "bench-parallel/medium/workers=2": 1.569,
            "bench-parallel/medium/workers=4": 1.168,
        },
    ),
]


class TestAdaptCommittedArtifacts:
    @pytest.mark.parametrize(
        "name,kind,cell_count,pinned_geomeans",
        COMMITTED,
        ids=[row[0] for row in COMMITTED],
    )
    def test_artifact_binned_and_geomeaned(
        self, name, kind, cell_count, pinned_geomeans
    ):
        report = json.loads((REPO / name).read_text())
        receipt = adapt(report)
        assert receipt["kind"] == kind
        assert BENCH_SCHEMA_KINDS[report["schema"]] == kind
        # Provenance is the report's own host block, not this host's.
        for key in ("python", "platform", "cpu_count", "gc_enabled"):
            assert receipt["provenance"][key] == report[key]
        assert receipt["provenance"]["git_rev"] is None
        assert receipt["created_at"] is None  # legacy: sorts before any run
        assert receipt["payload"] is report  # verbatim, not a copy
        assert receipt["identity"]["suite"] == report["suite"]

        raw = cells_of(receipt)
        assert len(raw) == cell_count
        cells = score([(name, receipt)])
        computed = geomeans(cells)
        for group, value in pinned_geomeans.items():
            assert computed[group] == value

    def test_adaptation_is_deterministic(self):
        report = json.loads((REPO / "BENCH_solver.json").read_text())
        assert receipt_digest(adapt(report)) == receipt_digest(
            adapt(json.loads((REPO / "BENCH_solver.json").read_text()))
        )

    def test_native_receipt_passes_through_unchanged(self):
        report = json.loads((REPO / "BENCH_solver.json").read_text())
        receipt = receipt_from_bench_report(report, created_at=123.0)
        assert adapt(receipt) is receipt

    def test_fresh_receipt_differs_from_adapted_artifact(self):
        report = json.loads((REPO / "BENCH_solver.json").read_text())
        fresh = receipt_from_bench_report(report, created_at=123.0)
        assert fresh["created_at"] == 123.0
        assert receipt_digest(fresh) != receipt_digest(adapt(report))

    def test_unknown_schema_is_rejected(self):
        with pytest.raises(ValueError, match="unknown artifact schema"):
            adapt({"schema": "repro-bench-quantum/9"})


class TestIngestAll:
    def test_whole_committed_set_scores_to_90_single_sample_cells(self):
        receipts, skipped = ingest(BENCH_PATHS)
        assert skipped == []
        assert [r["kind"] for _, r in receipts] == [row[1] for row in COMMITTED]
        cells = score(receipts)
        assert len(cells) == sum(row[2] for row in COMMITTED)
        # One sample per cell: every baseline IS its current, so even a
        # zero-tolerance gate has nothing to fail.
        assert all(len(c.samples) == 1 for c in cells)
        assert all(c.delta_percent == 0.0 for c in cells)
        assert gate_failures(cells, 0.0) == []
        computed = geomeans(cells)
        for _, _, _, pinned in COMMITTED:
            for group, value in pinned.items():
                assert computed[group] == value

    def test_directory_ingest_is_byte_deterministic_under_shuffles(
        self, tmp_path, monkeypatch
    ):
        """Two stores holding the same receipts, written in different
        orders, must render the identical table and trajectory bytes —
        directory ingestion orders by filename, not by mtime or
        readdir() order (the scorer tie-breaks equal timestamps by
        ingestion order, so ingestion order must be reproducible)."""
        import random

        from repro.warehouse import receipt_from_bench_report, write_receipt
        from repro.warehouse.reporting import render_table, trajectory
        from repro.warehouse.scoring import score as score_cells

        base = json.loads((REPO / "BENCH_solver.json").read_text())
        receipts = []
        for i in range(6):
            report = dict(base)
            report["speedups"] = {
                k: round(v * (1 + i / 10), 3)
                for k, v in base["speedups"].items()
            }
            # Equal timestamps on purpose: force the ingestion-order
            # tie-break, the path a readdir()-ordered ingest would break.
            receipts.append(receipt_from_bench_report(report, created_at=5.0))

        outputs = []
        for run, order in (("fifo", receipts), ("shuffled", None)):
            batch = list(receipts)
            if order is None:
                random.Random(7).shuffle(batch)
            store = tmp_path / run / "store"
            store.mkdir(parents=True)
            for receipt in batch:
                write_receipt(receipt, str(store))
            # Relative ingest: identical path strings across both runs.
            monkeypatch.chdir(tmp_path / run)
            loaded, skipped = ingest(["store"])
            assert skipped == []
            cells = score_cells(loaded)
            table = render_table(cells, max_regression=60.0)
            doc = json.dumps(
                trajectory(loaded, cells, skipped, max_regression=60.0),
                sort_keys=True,
            )
            outputs.append((table, doc))
        assert outputs[0] == outputs[1]

    def test_directory_ingest_skips_unknown_schemas(self, tmp_path):
        known = tmp_path / "a.json"
        known.write_text((REPO / "BENCH_solver.json").read_text())
        (tmp_path / "b.json").write_text('{"schema": "other/1"}')
        (tmp_path / "c.json").write_text("{not json")
        receipts, skipped = ingest([str(tmp_path)])
        assert [p for p, _ in receipts] == [str(known)]
        assert sorted(skipped) == [str(tmp_path / "b.json"), str(tmp_path / "c.json")]

    def test_explicit_unknown_file_is_an_error(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text('{"schema": "other/1"}')
        with pytest.raises(ValueError, match="unknown artifact schema"):
            ingest([str(bad)])
        with pytest.raises(ValueError, match="no such receipt"):
            ingest([str(tmp_path / "missing.json")])

    def test_load_any_prefixes_errors_with_the_path(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text('{"schema": "other/1"}')
        with pytest.raises(ValueError, match="b.json"):
            load_any(str(bad))
