"""Receipt invariants: the content address is a function of the *data*.

Three properties pin the warehouse's addressing contract
(docs/warehouse.md):

1. the address is invariant under JSON key reordering / dict
   insertion-order shuffles (like ``FactBase.digest``),
2. a receipt round-trips byte-identically through dump/load, and
3. mutating any field — at any depth — changes the address.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.warehouse import (
    KINDS,
    RECEIPT_SCHEMA,
    canonical_bytes,
    dump_receipt,
    git_revision,
    host_provenance,
    iter_receipts,
    load_receipt,
    make_receipt,
    receipt_digest,
    receipt_filename,
    validate_receipt,
    write_receipt,
)

# JSON values as the warehouse sees them.  Floats are bounded and
# integral-free of NaN/inf (canonical_bytes rejects those by contract).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)
_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=8), children, max_size=3),
    ),
    max_leaves=12,
)
_payloads = st.dictionaries(st.text(min_size=1, max_size=8), _json_values, max_size=4)


def _shuffle_orders(value, rng):
    """Deep-copy ``value`` rebuilding every dict in a shuffled key order."""
    if isinstance(value, dict):
        keys = list(value)
        rng.shuffle(keys)
        return {k: _shuffle_orders(value[k], rng) for k in keys}
    if isinstance(value, list):
        return [_shuffle_orders(v, rng) for v in value]
    return value


def _make(payload, identity=None):
    return make_receipt(
        "bench-solver",
        identity=identity or {"suite": "small", "flavors": ["2objH"]},
        payload=payload,
        created_at=1700000000.0,
        provenance={
            "python": "3.11.0",
            "platform": "linux",
            "cpu_count": 4,
            "gc_enabled": True,
            "git_rev": None,
        },
    )


class TestContentAddress:
    @given(payload=_payloads, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_digest_invariant_under_key_reordering(self, payload, seed):
        receipt = _make(payload)
        shuffled = _shuffle_orders(receipt, random.Random(seed))
        assert shuffled == receipt  # same data...
        assert canonical_bytes(shuffled) == canonical_bytes(receipt)
        assert receipt_digest(shuffled) == receipt_digest(receipt)
        assert receipt_filename(shuffled) == receipt_filename(receipt)

    @given(payload=_payloads)
    @settings(max_examples=60, deadline=None)
    def test_dump_load_round_trip_is_byte_identical(self, payload, tmp_path_factory):
        receipt = _make(payload)
        store = str(tmp_path_factory.mktemp("wh"))
        path = write_receipt(receipt, store)
        loaded = load_receipt(path)
        assert loaded == receipt
        assert dump_receipt(loaded) == dump_receipt(receipt)
        with open(path, "r", encoding="utf-8") as fh:
            assert fh.read() == dump_receipt(receipt)
        # Re-writing the same receipt is idempotent: same address, one file.
        assert write_receipt(loaded, store) == path
        assert iter_receipts(store) == [path]

    @given(payload=_payloads)
    @settings(max_examples=40, deadline=None)
    def test_any_field_mutation_changes_the_address(self, payload):
        receipt = _make(payload)
        before = receipt_digest(receipt)
        for mutated in _mutations(receipt):
            assert receipt_digest(mutated) != before, mutated


def _mutations(receipt):
    """Every receipt obtainable by mutating exactly one leaf (any depth)."""

    def mutate_leaf(value):
        if isinstance(value, bool):
            return not value
        if isinstance(value, (int, float)):
            bumped = value + 1
            # Huge floats absorb +1; halving always changes a nonzero float.
            return bumped if bumped != value else value / 2
        if isinstance(value, str):
            return value + "x"
        if value is None:
            return "was-null"
        raise AssertionError(f"not a leaf: {value!r}")

    def walk(node, path):
        if isinstance(node, dict):
            for key in node:
                yield from walk(node[key], path + [key])
            yield path, dict  # structural mutation: add a key
        elif isinstance(node, list):
            for i, item in enumerate(node):
                yield from walk(item, path + [i])
            yield path, list  # structural mutation: append
        else:
            yield path, None

    for path, structural in walk(receipt, []):
        clone = json.loads(json.dumps(receipt))
        parent = clone
        for step in path[:-1] if structural is None else path:
            parent = parent[step]
        if structural is dict:
            parent["__mutation__"] = 1
        elif structural is list:
            parent.append("__mutation__")
        elif path:
            parent[path[-1]] = mutate_leaf(parent[path[-1]])
        else:  # pragma: no cover - receipt root is always a dict
            continue
        yield clone


class TestGitRevision:
    def test_resolves_this_checkout(self):
        rev = git_revision()
        assert rev is not None
        assert len(rev) == 40
        int(rev, 16)  # hex commit id

    def test_outside_a_checkout_returns_none(self, tmp_path):
        assert git_revision(str(tmp_path)) is None

    def test_stamped_into_fresh_provenance(self):
        assert host_provenance()["git_rev"] == git_revision()


class TestValidation:
    def test_make_receipt_accepts_every_kind(self):
        for kind in KINDS:
            receipt = _make({"n": 1})
            receipt["kind"] = kind
            validate_receipt(receipt)
            assert receipt_filename(receipt).startswith(kind + "-")

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda r: r.update(schema="repro-receipt/0"),
            lambda r: r.update(kind="bench-quantum"),
            lambda r: r.update(created_at="yesterday"),
            lambda r: r.update(provenance="linux"),
            lambda r: r["provenance"].pop("git_rev"),
            lambda r: r.update(identity={}),
            lambda r: r.update(payload=[1, 2]),
            lambda r: r.update(surprise=True),
        ],
    )
    def test_rejects_malformed_receipts(self, corrupt):
        receipt = _make({"n": 1})
        corrupt(receipt)
        with pytest.raises(ValueError):
            validate_receipt(receipt)

    def test_rejects_non_json_payloads(self):
        with pytest.raises((TypeError, ValueError)):
            _make({"when": object()})

    def test_receipt_schema_constant(self):
        assert RECEIPT_SCHEMA == "repro-receipt/1"
        assert _make({"n": 1})["schema"] == RECEIPT_SCHEMA
