"""The span tracer: nesting, thread-safety, export formats, no-op cost."""

import json
import threading
import time

from repro.obs import Span, Tracer


class TestSpans:
    def test_with_block_records_one_span(self):
        t = Tracer()
        with t.span("work"):
            pass
        (span,) = t.spans()
        assert span.name == "work"
        assert span.end is not None
        assert span.seconds >= 0

    def test_nesting_depths(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("middle"):
                with t.span("inner"):
                    pass
        by_name = {s.name: s for s in t.spans()}
        assert by_name["outer"].depth == 0
        assert by_name["middle"].depth == 1
        assert by_name["inner"].depth == 2
        # Inner spans finish first.
        assert [s.name for s in t.spans()] == ["inner", "middle", "outer"]

    def test_current_tracks_innermost(self):
        t = Tracer()
        assert t.current() is None
        with t.span("a"):
            assert t.current().name == "a"
            with t.span("b"):
                assert t.current().name == "b"
            assert t.current().name == "a"
        assert t.current() is None

    def test_attrs_annotate_and_add(self):
        t = Tracer()
        with t.span("s", kind="demo"):
            t.annotate(items=3)
            t.add("ops")
            t.add("ops", 2)
        (span,) = t.spans()
        assert span.attrs == {"kind": "demo", "items": 3, "ops": 3}

    def test_exception_still_closes_span(self):
        t = Tracer()
        try:
            with t.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        (span,) = t.spans()
        assert span.name == "boom"
        assert span.end is not None
        assert t.current() is None

    def test_manual_handle(self):
        t = Tracer()
        handle = t.span("manual")
        assert t.current() is handle.span
        handle.__exit__(None, None, None)
        assert t.current() is None
        assert [s.name for s in t.spans()] == ["manual"]

    def test_span_names_sorted_distinct(self):
        t = Tracer()
        for name in ("b", "a", "b"):
            with t.span(name):
                pass
        assert t.span_names() == ["a", "b"]


class TestThreadSafety:
    def test_stacks_are_per_thread(self):
        t = Tracer()
        barrier = threading.Barrier(4)
        errors = []

        def worker(i):
            try:
                barrier.wait()
                for k in range(50):
                    with t.span(f"t{i}", k=k) as outer:
                        with t.span(f"t{i}.inner") as inner:
                            assert inner.depth == outer.depth + 1
                        assert t.current() is outer
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert len(t.spans()) == 4 * 50 * 2
        # Every span carries its recording thread's id, and within one
        # thread nesting depths never interleave with another thread's.
        for span in t.spans():
            assert span.name.startswith("t")
            assert (span.depth == 1) == span.name.endswith(".inner")

    def test_counter_samples_from_many_threads(self):
        t = Tracer()

        def worker():
            for v in range(100):
                t.counter_sample("c", v)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        trace = t.chrome_trace()
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 400


class TestChromeTrace:
    def test_schema(self):
        t = Tracer()
        with t.span("outer", label="x"):
            with t.span("inner"):
                pass
            t.counter_sample("tuples", 42)
        trace = t.chrome_trace()
        # Round-trips through JSON untouched.
        assert json.loads(json.dumps(trace)) == trace
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for e in complete:
            assert e["cat"] == "repro"
            assert isinstance(e["pid"], int)
            assert isinstance(e["tid"], int)
            assert e["ts"] >= 0  # microseconds from the tracer epoch
            assert e["dur"] >= 0
        (c,) = counters
        assert c["name"] == "tuples"
        assert c["args"]["value"] == 42
        # Events are emitted in timestamp order.
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_non_json_attrs_are_stringified(self):
        t = Tracer()
        with t.span("s", obj=object(), ok=1, label="x"):
            pass
        (event,) = t.chrome_trace()["traceEvents"]
        assert isinstance(event["args"]["obj"], str)
        assert event["args"]["ok"] == 1
        assert event["args"]["label"] == "x"


class TestSummary:
    def test_counts_and_self_time(self):
        t = Tracer()
        with t.span("outer"):
            time.sleep(0.002)
            with t.span("inner"):
                time.sleep(0.002)
        with t.span("inner"):
            pass
        summary = t.summary()
        assert summary["inner"]["count"] == 2
        assert summary["outer"]["count"] == 1
        # Parent self-time excludes the nested child's time.
        outer = summary["outer"]
        assert 0 <= outer["self_seconds"] <= outer["total_seconds"]
        assert outer["min_seconds"] <= outer["max_seconds"]

    def test_render_summary_lists_every_name(self):
        t = Tracer()
        with t.span("alpha"):
            pass
        with t.span("beta"):
            pass
        table = t.render_summary()
        assert "alpha" in table and "beta" in table
        assert "count" in table.splitlines()[0]

    def test_empty_tracer(self):
        t = Tracer()
        assert t.spans() == []
        assert t.summary() == {}
        assert t.chrome_trace()["traceEvents"] == []


class TestNoOpDiscipline:
    def test_solver_signatures_default_to_none(self):
        """Every instrumented entry point defaults tracer to None, so the
        untraced path never constructs observability objects."""
        import inspect

        from repro.analysis import analyze
        from repro.analysis.solver import solve
        from repro.datalog.engine import Engine
        from repro.facts.encoder import encode_program
        from repro.frontend import parse_source
        from repro.introspection.driver import run_introspective

        for fn in (analyze, solve, encode_program, parse_source,
                   run_introspective, Engine.__init__):
            param = inspect.signature(fn).parameters["tracer"]
            assert param.default is None, fn
