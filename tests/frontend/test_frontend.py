"""Tests for the surface-language frontend: parsing, lowering, analysis."""

import pytest

from repro import analyze, dump_program
from repro.frontend import SyntaxError_, parse_source, parse_source_text
from repro.ir import (
    Alloc,
    Cast,
    Load,
    Move,
    Return,
    SpecialCall,
    StaticCall,
    StaticLoad,
    StaticStore,
    Store,
    VirtualCall,
)

BOX_SOURCE = """
// the classic container example
abstract class Item { }
class Item0 extends Item { }
class Item1 extends Item { }
class Box {
    field v;
    method set(x) { this.v = x; }
    method get()  { r = this.v; return r; }
}
class Main {
    static method main() {
        b0 = new Box();
        b1 = new Box();
        i0 = new Item0();
        i1 = new Item1();
        b0.set(i0);
        b1.set(i1);
        g0 = b0.get();
        g1 = b1.get();
        c0 = (Item0) g0;
    }
}
"""


class TestParsing:
    def test_class_structure(self):
        ast = parse_source_text(BOX_SOURCE)
        names = [c.name for c in ast.classes]
        assert names == ["Item", "Item0", "Item1", "Box", "Main"]
        assert ast.classes[0].is_abstract
        assert ast.classes[1].superclass == "Item"

    def test_statement_kinds(self):
        source = """
        interface I { }
        class G { static field s; }
        class C implements I {
            field f;
            method m(a, b) { return a; }
            static method sm(a) { return a; }
        }
        class Main {
            static method main() {
                x = new C();
                y = x;
                x.f = y;
                z = x.f;
                G::s = x;
                w = G::s;
                c = (I) w;
                r1 = x.m(y, z);
                x.m(y, z);
                r2 = C::sm(x);
                C::sm(x);
                r3 = x.<C::m>(y, z);
                x.<C::m>(y, z);
                arr = new C();
                arr[] = x;
                e = arr[];
                return;
            }
        }
        """
        program = parse_source(source)
        instrs = program.method("Main.main/0").instructions
        kinds = [type(i) for i in instrs]
        assert kinds == [
            Alloc,
            Move,
            Store,
            Load,
            StaticStore,
            StaticLoad,
            Cast,
            VirtualCall,
            VirtualCall,
            StaticCall,
            StaticCall,
            SpecialCall,
            SpecialCall,
            Alloc,
            Store,
            Load,
            Return,
        ]

    def test_comments(self):
        program = parse_source(
            """
            class Main { /* block
               comment */ static method main() { return; } // eol
            }
            """
        )
        assert program.count_methods() == 1

    def test_implements_list(self):
        ast = parse_source_text(
            """
            interface A { } interface B { }
            class C implements A, B { }
            class Main { static method main() { return; } }
            """
        )
        assert ast.classes[2].interfaces == ("A", "B")


class TestStringsAndExceptions:
    def test_string_literal(self):
        program = parse_source(
            """
            class Main {
                static method main() {
                    s = "hello world";
                    t = s;
                }
            }
            """
        )
        result = analyze(program, "insens")
        assert result.points_to("Main.main/0/t") == {'<"hello world">'}

    def test_throw_catch_statements(self):
        program = parse_source(
            """
            class Exc { }
            class Main {
                static method main() {
                    e = new Exc();
                    throw e;
                    catch (Exc) h;
                }
            }
            """
        )
        result = analyze(program, "insens")
        assert result.points_to("Main.main/0/h") == {"Main.main/0/new Exc/0"}


class TestEntries:
    def test_implicit_main_entry(self):
        program = parse_source("class Main { static method main() { return; } }")
        assert program.entry_points == ["Main.main/0"]

    def test_explicit_entry(self):
        program = parse_source(
            """
            class App { static method boot() { return; } }
            entry App.boot;
            """
        )
        assert program.entry_points == ["App.boot/0"]

    def test_missing_entry_rejected(self):
        with pytest.raises(SyntaxError_, match="no entry points"):
            parse_source("class A { method m() { return; } }")

    def test_undefined_entry_rejected(self):
        with pytest.raises(SyntaxError_, match="not defined"):
            parse_source("entry Ghost.main;\nclass A { }")


class TestErrors:
    @pytest.mark.parametrize(
        "source,match",
        [
            ("class { }", "class name"),
            ("klass A { }", "'class' or 'interface'"),
            ("class A extends { }", "superclass"),
            ("class A { junk }", "member"),
            ("class A { method m() { x = ; } }", "variable"),
            ("class A { method m() { x = new ; } }", "class name"),
            ("class A { method m() { return x } }", "';'"),
        ],
    )
    def test_syntax_errors(self, source, match):
        with pytest.raises(SyntaxError_, match=match):
            parse_source_text(source)

    def test_error_carries_line_number(self):
        with pytest.raises(SyntaxError_, match="line 3"):
            parse_source_text("class A {\n  method m() {\n    x = ;\n  }\n}")

    def test_unexpected_character(self):
        with pytest.raises(SyntaxError_, match="unexpected character"):
            parse_source_text("class A # { }")


class TestEndToEnd:
    def test_parsed_program_analyzes_precisely(self):
        program = parse_source(BOX_SOURCE)
        insens = analyze(program, "insens")
        assert len(insens.points_to("Main.main/0/g0")) == 2  # conflated
        obj = analyze(program, "2objH")
        assert obj.points_to("Main.main/0/g0") == {"Main.main/0/new Item0/2"}

    def test_roundtrip_through_printer(self):
        program = parse_source(BOX_SOURCE)
        text = dump_program(program)
        assert "g0 = b0.get/0()" in text
