"""Sharded result cache: routing, peer calls, and local fallback."""

from __future__ import annotations

import threading

import pytest

from repro.cluster.shard import ShardedResultCache
from repro.cluster.worker import WorkerNode
from repro.service.cache import ResultCache
from repro.service.telemetry import Registry

PAYLOAD = {"state": "done", "answer": 42}


def _digest_owned_by(shard: ShardedResultCache, node_id: str) -> str:
    for i in range(10_000):
        digest = f"{i:064x}"
        if shard.owner(digest) == node_id:
            return digest
    raise AssertionError(f"no digest hashed to {node_id}")


@pytest.fixture()
def peer_node():
    """A worker's shard server without any coordinator interaction."""
    node = WorkerNode("http://127.0.0.1:9")  # coordinator never contacted
    thread = threading.Thread(
        target=node._server.serve_forever, daemon=True
    )
    thread.start()
    yield node
    node._server.shutdown()
    node._server.server_close()


class TestRouting:
    def test_single_node_serves_locally(self):
        shard = ShardedResultCache(ResultCache(capacity=4), node_id="me")
        digest = "ab" * 32
        assert shard.owner(digest) == "me"
        shard.put("k" * 8, digest, PAYLOAD)
        assert shard.get("k" * 8, digest) == PAYLOAD
        assert shard.local.get("k" * 8) == PAYLOAD

    def test_peer_round_trip(self, peer_node):
        shard = ShardedResultCache(ResultCache(capacity=4), node_id="me")
        shard.add_peer("peer", peer_node.url)
        digest = _digest_owned_by(shard, "peer")
        key = "ab12" * 16
        shard.put(key, digest, PAYLOAD)
        # The fill landed on the peer, not locally.
        assert peer_node.cache.get(key) == PAYLOAD
        assert shard.local.get(key) is None
        assert shard.get(key, digest) == PAYLOAD

    def test_peer_miss_is_authoritative(self, peer_node):
        local = ResultCache(capacity=4)
        shard = ShardedResultCache(local, node_id="me")
        shard.add_peer("peer", peer_node.url)
        digest = _digest_owned_by(shard, "peer")
        # Even a locally-cached value is not consulted: the owner said no.
        local.put("feed" * 16, PAYLOAD)
        assert shard.get("feed" * 16, digest) is None

    def test_dead_peer_falls_back_local(self):
        ops = Registry().counter("ops", "ops")
        shard = ShardedResultCache(
            ResultCache(capacity=4), node_id="me", ops=ops, timeout=0.2
        )
        shard.add_peer("peer", "http://127.0.0.1:9")  # nothing listens
        digest = _digest_owned_by(shard, "peer")
        key = "dead" * 16
        shard.put(key, digest, PAYLOAD)  # falls back to the local tier
        assert shard.get(key, digest) == PAYLOAD
        assert ops.value(op="put", outcome="fallback") == 1
        assert ops.value(op="get", outcome="fallback") == 1

    def test_removed_peer_stops_owning_keys(self, peer_node):
        shard = ShardedResultCache(ResultCache(capacity=4), node_id="me")
        shard.add_peer("peer", peer_node.url)
        digest = _digest_owned_by(shard, "peer")
        shard.remove_peer("peer")
        assert shard.owner(digest) == "me"
        assert shard.peer_url("peer") is None
