"""Consistent-hash ring: determinism, coverage, and minimal remapping."""

from __future__ import annotations

import pytest

from repro.cluster.ring import HashRing

KEYS = [f"{i:04x}" * 16 for i in range(200)]


class TestRing:
    def test_empty_ring_maps_nothing(self):
        assert HashRing().node_for("abc") is None
        assert len(HashRing()) == 0

    def test_every_key_maps_to_a_member(self):
        ring = HashRing()
        for node in ("alpha", "beta", "gamma"):
            ring.add(node)
        owners = {ring.node_for(k) for k in KEYS}
        assert owners <= {"alpha", "beta", "gamma"}
        # With 200 keys and 64 vnodes each, every node owns something.
        assert owners == {"alpha", "beta", "gamma"}

    def test_mapping_is_insertion_order_independent(self):
        forward, backward = HashRing(), HashRing()
        for node in ("alpha", "beta", "gamma"):
            forward.add(node)
        for node in ("gamma", "beta", "alpha"):
            backward.add(node)
        assert [forward.node_for(k) for k in KEYS] == [
            backward.node_for(k) for k in KEYS
        ]

    def test_removal_only_remaps_the_departed_nodes_keys(self):
        ring = HashRing()
        for node in ("alpha", "beta", "gamma"):
            ring.add(node)
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove("beta")
        for key, owner in before.items():
            if owner == "beta":
                assert ring.node_for(key) in ("alpha", "gamma")
            else:
                # Keys not on the departed node keep their owner: this is
                # the property that makes worker churn cheap for a cache.
                assert ring.node_for(key) == owner

    def test_add_remove_are_idempotent(self):
        ring = HashRing()
        ring.add("alpha")
        ring.add("alpha")
        assert len(ring) == 1
        ring.remove("alpha")
        ring.remove("alpha")
        assert len(ring) == 0
        ring.remove("never-added")

    def test_nodes_listing(self):
        ring = HashRing()
        ring.add("beta")
        ring.add("alpha")
        assert ring.nodes() == ("alpha", "beta")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_load_spreads_roughly_evenly(self):
        ring = HashRing()
        for node in ("alpha", "beta", "gamma", "delta"):
            ring.add(node)
        counts = {}
        for key in KEYS:
            owner = ring.node_for(key)
            counts[owner] = counts.get(owner, 0) + 1
        # Loose bound: no node owns more than half of 200 keys at 4 nodes.
        assert max(counts.values()) < 100
