"""Token-bucket rate limiting with an injected clock."""

from __future__ import annotations

import pytest

from repro.cluster.ratelimit import TokenBucketLimiter


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_reject_with_retry_after(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=2.0, burst=3, clock=clock)
        for _ in range(3):
            allowed, retry_after = limiter.allow("c1")
            assert allowed and retry_after == 0.0
        allowed, retry_after = limiter.allow("c1")
        assert not allowed
        # Empty bucket at 2 tokens/sec: one token accrues in 0.5s.
        assert retry_after == pytest.approx(0.5)

    def test_refill_after_waiting(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=2.0, burst=1, clock=clock)
        assert limiter.allow("c1")[0]
        assert not limiter.allow("c1")[0]
        clock.advance(0.5)  # exactly one token accrues
        assert limiter.allow("c1")[0]
        assert not limiter.allow("c1")[0]

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=10.0, burst=2, clock=clock)
        clock.advance(3600.0)  # an hour idle does not bank 36000 tokens
        assert limiter.allow("c1")[0]
        assert limiter.allow("c1")[0]
        assert not limiter.allow("c1")[0]

    def test_clients_are_independent(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.allow("c1")[0]
        assert not limiter.allow("c1")[0]
        assert limiter.allow("c2")[0]

    def test_idle_buckets_are_pruned(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=1, clock=clock)
        limiter.allow("old-client")
        clock.advance(1000.0)  # past full-refill + prune window
        limiter.allow("new-client")
        assert "old-client" not in limiter._buckets
        assert "new-client" in limiter._buckets

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=1.0, burst=0)
