"""Coordinator unit tests: journaled intake, leases, liveness, 429s.

These drive :class:`ClusterCoordinator` directly on a never-started
service — jobs stay queued unless a (test-issued) lease pulls them, which
makes worker-loss interleavings deterministic.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import Backpressure, ClusterConfig
from repro.cluster.journal import read_journal
from repro.service import AnalysisService, JobSpec, JobState


def make_service(tmp_path, **overrides) -> AnalysisService:
    config = ClusterConfig(
        journal=str(tmp_path / "journal.jsonl"), **overrides
    )
    return AnalysisService(workers=0, cluster=config)


def make_spec(**kwargs) -> JobSpec:
    kwargs.setdefault("benchmark", "antlr")
    kwargs.setdefault("analysis", "insens")
    return JobSpec(**kwargs)


def done_payload(digest: str) -> dict:
    return {
        "state": JobState.DONE,
        "facts_digest": digest,
        "stats": {"tuple_count": 7, "seconds": 0.01},
    }


class TestDurableIntake:
    def test_submit_journals_before_queueing(self, tmp_path):
        service = make_service(tmp_path)
        try:
            job = service.submit(make_spec())
            assert service.queue.depth() == 1
            records, _, _ = read_journal(service.cluster.journal.path)
            assert [r["type"] for r in records] == ["accepted"]
            assert records[0]["id"] == job.id
            assert records[0]["spec"]["benchmark"] == "antlr"
        finally:
            service.stop()

    def test_replay_restores_unfinished_jobs_with_original_ids(self, tmp_path):
        first = make_service(tmp_path)
        survivor = first.submit(make_spec())
        finished = first.submit(make_spec(analysis="1call"))
        first.cluster.record_terminal(finished.id, JobState.DONE)
        first.stop()

        second = make_service(tmp_path)
        try:
            restored = second.job(survivor.id)
            assert restored is not None
            assert restored.state == JobState.QUEUED
            assert restored.spec.benchmark == "antlr"
            assert second.job(finished.id) is None
            assert second.queue.depth() == 1
            assert second.cluster._m_replayed.total() == 1
        finally:
            second.stop()

    def test_cancelled_job_is_not_replayed(self, tmp_path):
        first = make_service(tmp_path)
        job = first.submit(make_spec())
        assert first.cancel(job.id)
        first.stop()
        second = make_service(tmp_path)
        try:
            assert second.queue.depth() == 0
            assert second.job(job.id) is None
        finally:
            second.stop()

    def test_requeue_attempts_survive_restart(self, tmp_path):
        first = make_service(tmp_path, heartbeat_timeout=0.05)
        job = first.submit(make_spec())
        worker = first.cluster.register_worker("http://127.0.0.1:9")
        leased = first.cluster.lease(worker["id"])
        assert leased["job_id"] == job.id
        time.sleep(0.1)
        assert first.cluster.reap() == [worker["id"]]
        first.stop()

        second = make_service(tmp_path)
        try:
            assert second.cluster._attempts[job.id] == 1
        finally:
            second.stop()


class TestLeases:
    def test_register_lease_complete_flow(self, tmp_path):
        receipt_dir = tmp_path / "receipts"
        service = make_service(tmp_path)
        service.receipt_dir = str(receipt_dir)
        try:
            job = service.submit(make_spec())
            worker = service.cluster.register_worker(
                "http://127.0.0.1:9", name="w1"
            )
            leased = service.cluster.lease(worker["id"])
            assert leased["job_id"] == job.id
            assert leased["spec"]["benchmark"] == "antlr"
            assert job.state == JobState.RUNNING
            assert service.cluster.lease_count() == 1

            accepted = service.cluster.complete(
                worker["id"], job.id, done_payload(leased["facts_digest"])
            )
            assert accepted
            assert job.state == JobState.DONE
            assert job.result["worker"]["id"] == worker["id"]
            assert job.result["worker"]["name"] == "w1"
            assert service.cluster.lease_count() == 0
            # Exactly one receipt for the completed job.
            assert len(list(receipt_dir.glob("*.json"))) == 1
        finally:
            service.stop()

    def test_empty_queue_leases_none(self, tmp_path):
        service = make_service(tmp_path)
        try:
            worker = service.cluster.register_worker("http://127.0.0.1:9")
            assert service.cluster.lease(worker["id"]) is None
        finally:
            service.stop()

    def test_unknown_worker_cannot_lease(self, tmp_path):
        service = make_service(tmp_path)
        try:
            with pytest.raises(KeyError):
                service.cluster.lease("deadbeef")
        finally:
            service.stop()

    def test_cache_hit_is_answered_inline(self, tmp_path):
        service = make_service(tmp_path)
        try:
            first = service.submit(make_spec())
            worker = service.cluster.register_worker("http://127.0.0.1:9")
            leased = service.cluster.lease(worker["id"])
            service.cluster.complete(
                worker["id"], first.id, done_payload(leased["facts_digest"])
            )
            # An identical submission never reaches a worker.
            second = service.submit(make_spec())
            assert service.cluster.lease(worker["id"]) is None
            assert second.state == JobState.DONE
            assert second.cached is True
        finally:
            service.stop()

    def test_stale_completion_is_rejected_with_one_receipt(self, tmp_path):
        receipt_dir = tmp_path / "receipts"
        service = make_service(tmp_path, heartbeat_timeout=0.05)
        service.receipt_dir = str(receipt_dir)
        try:
            job = service.submit(make_spec())
            lost = service.cluster.register_worker("http://127.0.0.1:9")
            leased = service.cluster.lease(lost["id"])
            digest = leased["facts_digest"]
            time.sleep(0.1)
            assert service.cluster.reap() == [lost["id"]]
            assert job.state == JobState.QUEUED  # requeued, attempt 1

            fresh = service.cluster.register_worker("http://127.0.0.1:10")
            assert service.cluster.lease(fresh["id"])["job_id"] == job.id
            assert service.cluster.complete(
                fresh["id"], job.id, done_payload(digest)
            )
            # The lost worker reports late: stale, ignored, no 2nd receipt.
            assert not service.cluster.complete(
                lost["id"], job.id, done_payload(digest)
            )
            assert job.state == JobState.DONE
            assert job.result["worker"]["id"] == fresh["id"]
            assert len(list(receipt_dir.glob("*.json"))) == 1
            assert service.cluster._m_completions.value(outcome="stale") == 1
        finally:
            service.stop()

    def test_bounded_retries_then_dead_letter(self, tmp_path):
        service = make_service(tmp_path, heartbeat_timeout=0.05, max_retries=1)
        try:
            job = service.submit(make_spec())
            for attempt in (1, 2):
                worker = service.cluster.register_worker("http://127.0.0.1:9")
                assert service.cluster.lease(worker["id"])["job_id"] == job.id
                time.sleep(0.1)
                assert service.cluster.reap() == [worker["id"]]
            # Two lost leases at max_retries=1: dead-lettered, not requeued.
            assert job.state == JobState.ERROR
            assert job.result["dead_lettered"] is True
            assert "dead-lettered after 2 attempts" in job.error
            assert job.id in service.cluster.dead_letters
            assert service.queue.depth() == 0
            # The terminal state is journaled: no zombie replay.
            records, _, _ = read_journal(service.cluster.journal.path)
            assert [r["type"] for r in records] == [
                "accepted", "requeue", "done",
            ]
        finally:
            service.stop()

    def test_detach_requeues_immediately(self, tmp_path):
        service = make_service(tmp_path)
        try:
            job = service.submit(make_spec())
            worker = service.cluster.register_worker("http://127.0.0.1:9")
            service.cluster.lease(worker["id"])
            assert service.cluster.detach_worker(worker["id"])
            assert job.state == JobState.QUEUED
            assert service.queue.depth() == 1
            assert not service.cluster.detach_worker(worker["id"])
        finally:
            service.stop()


class TestBackpressure:
    def test_queue_depth_cap(self, tmp_path):
        service = make_service(tmp_path, max_queue_depth=1)
        try:
            service.submit(make_spec())
            with pytest.raises(Backpressure) as exc:
                service.submit(make_spec(analysis="1call"))
            assert exc.value.reason == "queue_full"
            assert exc.value.retry_after > 0
            # The rejected job never reached the journal.
            records, _, _ = read_journal(service.cluster.journal.path)
            assert len(records) == 1
        finally:
            service.stop()

    def test_per_client_rate_limit(self, tmp_path):
        service = make_service(tmp_path, rate_limit=0.001, rate_burst=2)
        try:
            service.submit(make_spec(), client="alice")
            service.submit(make_spec(priority=1), client="alice")
            with pytest.raises(Backpressure) as exc:
                service.submit(make_spec(priority=2), client="alice")
            assert exc.value.reason == "rate_limited"
            # Other clients are unaffected.
            service.submit(make_spec(priority=3), client="bob")
        finally:
            service.stop()


class TestTopology:
    def test_snapshot_shape(self, tmp_path):
        service = make_service(tmp_path)
        try:
            service.submit(make_spec())
            worker = service.cluster.register_worker(
                "http://127.0.0.1:9", name="w1"
            )
            service.cluster.lease(worker["id"])
            topo = service.cluster.topology()
            assert topo["node_id"] == "coordinator"
            (worker_snap,) = topo["workers"]
            assert worker_snap["alive"] is True
            assert worker_snap["name"] == "w1"
            (lease_snap,) = topo["leases"]
            assert lease_snap["worker"] == worker["id"]
            assert worker["id"] in topo["ring_nodes"]
            assert "coordinator" in topo["ring_nodes"]
            assert topo["journal"]["records"] == 1
            assert topo["journal"]["bytes"] > 0
        finally:
            service.stop()
