"""End-to-end cluster tests over real HTTP: coordinator + worker nodes.

In-process :class:`WorkerNode` instances (threads, real sockets) against
a :func:`local_service` coordinator — the same wiring the CI
``cluster-smoke`` job exercises with separate OS processes.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import ClusterConfig, WorkerNode
from repro.cluster.worker import _http_json
from repro.service import ServiceClient, ServiceError
from repro.service.api import local_service


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def start_worker(url: str, **kwargs) -> WorkerNode:
    node = WorkerNode(url, poll_interval=0.05, **kwargs)
    node.start()
    assert wait_until(lambda: node.worker_id is not None, timeout=5.0)
    return node


class TestClusterEndToEnd:
    def test_jobs_run_on_workers_with_provenance_and_receipts(self, tmp_path):
        config = ClusterConfig(
            journal=str(tmp_path / "journal.jsonl"), heartbeat_timeout=5.0
        )
        receipt_dir = tmp_path / "receipts"
        with local_service(
            workers=0, cluster=config, receipt_dir=str(receipt_dir)
        ) as url:
            client = ServiceClient(url)
            nodes = [start_worker(url, name=f"w{i}") for i in range(2)]
            try:
                assert wait_until(
                    lambda: client.healthz()["cluster"]["live_workers"] == 2
                )
                specs = [
                    {"benchmark": "antlr", "analysis": "insens"},
                    {"benchmark": "antlr", "analysis": "1call"},
                    {"benchmark": "lusearch", "analysis": "insens"},
                ]
                ids = [client.submit(**spec) for spec in specs]
                worker_ids = {node.worker_id for node in nodes}
                for job_id in ids:
                    snapshot = client.wait(job_id, timeout=120)
                    assert snapshot["state"] == "done"
                    result = client.result(job_id)["result"]
                    # Executed by a registered worker, not the coordinator.
                    assert result["worker"]["id"] in worker_ids
                # One receipt per (uncached) job, stamped with its worker.
                import json

                receipts = [
                    json.loads(p.read_text())
                    for p in receipt_dir.glob("*.json")
                ]
                assert len(receipts) == len(ids)
                assert all(
                    r["payload"]["worker"]["id"] in worker_ids
                    for r in receipts
                )
                # Cluster metrics made it to the exposition.
                assert client.metric_value("repro_cluster_workers") == 2
                assert (
                    client.metric_value("repro_cluster_journal_records_total")
                    >= len(ids) * 2
                )
            finally:
                for node in nodes:
                    node.stop()

    def test_lease_expiry_requeues_to_a_live_worker(self, tmp_path):
        """The satellite regression: a worker vanishes mid-job, the lease
        expires, the job completes elsewhere, and exactly one receipt is
        emitted (the ghost's late completion is rejected as stale)."""
        config = ClusterConfig(
            journal=str(tmp_path / "journal.jsonl"),
            heartbeat_timeout=0.5,
            reaper_interval=0.05,
        )
        receipt_dir = tmp_path / "receipts"
        with local_service(
            workers=0, cluster=config, receipt_dir=str(receipt_dir)
        ) as url:
            client = ServiceClient(url)
            # A "worker" that leases a job and then goes silent: plain
            # HTTP registration with no heartbeat loop behind it.
            status, ghost = _http_json(
                f"{url}/cluster/workers",
                {"url": "http://127.0.0.1:9", "name": "ghost"},
            )
            assert status == 201
            job_id = client.submit(benchmark="antlr", analysis="insens")
            status, leased = _http_json(
                f"{url}/cluster/lease", {"worker": ghost["id"]}
            )
            assert status == 200 and leased["job_id"] == job_id

            # While the ghost sits on the lease, a real worker joins.
            node = start_worker(url, name="survivor")
            try:
                snapshot = client.wait(job_id, timeout=60)
                assert snapshot["state"] == "done"
                result = client.result(job_id)["result"]
                assert result["worker"]["id"] == node.worker_id

                # The ghost finally reports: stale, rejected.
                status, verdict = _http_json(
                    f"{url}/cluster/complete",
                    {
                        "worker": ghost["id"],
                        "job_id": job_id,
                        "payload": {"state": "done"},
                    },
                )
                assert status == 200 and verdict["accepted"] is False
                assert len(list(receipt_dir.glob("*.json"))) == 1
                assert client.metric_value("repro_cluster_requeues_total") == 1
            finally:
                node.stop()

    def test_http_backpressure_and_topology(self, tmp_path):
        config = ClusterConfig(
            journal=str(tmp_path / "journal.jsonl"), max_queue_depth=0
        )
        with local_service(workers=0, cluster=config) as url:
            client = ServiceClient(url)
            with pytest.raises(ServiceError) as exc:
                client.submit(benchmark="antlr", analysis="insens")
            assert exc.value.status == 429
            assert exc.value.payload["reason"] == "queue_full"
            # Retry-After surfaced through the client (header or body).
            assert exc.value.retry_after and exc.value.retry_after > 0
            topo = client._request("GET", "/cluster")
            assert topo["workers"] == []
            assert topo["config"]["max_queue_depth"] == 0

    def test_non_coordinator_rejects_cluster_routes(self):
        with local_service(workers=0) as url:
            client = ServiceClient(url)
            for method, path in (
                ("GET", "/cluster"),
                ("POST", "/cluster/lease"),
                ("POST", "/cluster/workers"),
                ("DELETE", "/cluster/workers/feedbeef"),
            ):
                with pytest.raises(ServiceError) as exc:
                    client._request(
                        method, path, {} if method == "POST" else None
                    )
                assert exc.value.status == 404

    def test_single_process_fallback_without_workers(self, tmp_path):
        """A coordinator with no workers behaves like plain serve."""
        config = ClusterConfig(journal=str(tmp_path / "journal.jsonl"))
        with local_service(workers=0, cluster=config) as url:
            client = ServiceClient(url)
            job_id = client.submit(benchmark="antlr", analysis="insens")
            assert client.wait(job_id, timeout=60)["state"] == "done"
            result = client.result(job_id)["result"]
            assert result["worker"] == {
                "id": "coordinator", "url": None, "name": "local",
            }

    def test_coordinator_restart_replays_unfinished_jobs(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        # First life: accept jobs but never run them (no dispatcher, no
        # workers), then die with them queued.
        from repro.service import AnalysisService, JobSpec

        first = AnalysisService(
            workers=0, cluster=ClusterConfig(journal=journal)
        )
        accepted = [
            first.submit(JobSpec(benchmark="antlr", analysis="insens")),
            first.submit(JobSpec(benchmark="antlr", analysis="1call")),
        ]
        first.stop()

        # Second life: the replayed jobs complete on a real worker.
        with local_service(
            workers=0, cluster=ClusterConfig(journal=journal)
        ) as url:
            client = ServiceClient(url)
            node = start_worker(url)
            try:
                for job in accepted:
                    snapshot = client.wait(job.id, timeout=120)
                    assert snapshot["state"] == "done"
            finally:
                node.stop()
