"""The crash-safe job journal: framing, recovery, and the pending fold."""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.journal import (
    JOURNAL_SCHEMA,
    JobJournal,
    pending_jobs,
    read_journal,
)

SPEC = {"benchmark": "antlr", "analysis": "insens"}


def _seed(path: str) -> "tuple[bytes, list[int]]":
    """Write a representative journal; return (bytes, line-end offsets)."""
    journal = JobJournal(path)
    journal.accepted("job000000001", SPEC)
    journal.accepted("job000000002", {**SPEC, "analysis": "2objH"})
    journal.done("job000000001", "done")
    journal.accepted("job000000003", SPEC)
    journal.requeue("job000000003", attempts=1, worker="w1")
    journal.accepted("job000000004", SPEC)
    journal.done("job000000003", "done")
    journal.close()
    data = Path(path).read_bytes()
    ends = [i + 1 for i, b in enumerate(data) if b == ord("\n")]
    return data, ends


class TestFraming:
    def test_append_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JobJournal(path)
        rec = journal.accepted("aaaa", SPEC)
        journal.close()
        assert rec["schema"] == JOURNAL_SCHEMA
        assert rec["seq"] == 0 and rec["type"] == "accepted"
        records, good_bytes, torn = read_journal(path)
        assert records == [rec]
        assert good_bytes == os.path.getsize(path)
        assert torn == 0

    def test_seq_continues_across_reopen(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        first = JobJournal(path)
        first.accepted("aaaa", SPEC)
        first.close()
        second = JobJournal(path)
        assert second.append("done", id="aaaa", state="done")["seq"] == 1
        second.close()

    def test_unknown_record_type_rejected(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j.jsonl"))
        try:
            journal.append("exploded")
            raise AssertionError("expected ValueError")
        except ValueError:
            pass
        finally:
            journal.close()

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_journal(str(tmp_path / "absent.jsonl")) == ([], 0, 0)


class TestRecovery:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_truncation_at_any_byte_offset_recovers_acked_prefix(self, data):
        """Model a crash mid-append: kill the file at an arbitrary byte.

        Every record fully written before the cut must be recovered
        exactly once, in order; the torn tail must be discarded and
        truncated so subsequent appends are clean.
        """
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "j.jsonl")
            full, ends = _seed(path)
            offset = data.draw(st.integers(0, len(full)), label="cut_offset")
            Path(path).write_bytes(full[:offset])

            recovered = JobJournal(path)
            try:
                intact = sum(1 for end in ends if end <= offset)
                # Exactly the fully-acked prefix, each record once.
                assert [r["seq"] for r in recovered.records] == list(
                    range(intact)
                )
                assert recovered.torn_records == (
                    0 if offset in (0, *ends) else 1
                )
                # The torn tail is gone from disk.
                expected_size = ends[intact - 1] if intact else 0
                assert os.path.getsize(path) == expected_size
                # Appends continue with the next sequence number …
                appended = recovered.append("done", id="x", state="done")
                assert appended["seq"] == intact
            finally:
                recovered.close()
            # … and the healed journal reads back clean.
            records, _, torn = read_journal(path)
            assert len(records) == intact + 1
            assert torn == 0

    def test_corrupt_middle_record_stops_reading(self, tmp_path):
        """A flipped byte mid-file distrusts everything after it."""
        path = str(tmp_path / "j.jsonl")
        full, ends = _seed(path)
        corrupt = bytearray(full)
        corrupt[ends[1] + 5] ^= 0xFF  # inside the third record
        Path(path).write_bytes(bytes(corrupt))
        records, good_bytes, torn = read_journal(path)
        assert len(records) == 2
        assert good_bytes == ends[1]
        assert torn == 1

    def test_foreign_schema_is_torn(self, tmp_path):
        path = tmp_path / "j.jsonl"
        record = {"schema": "other/9", "seq": 0, "type": "accepted",
                  "id": "a", "check": "000000000000"}
        path.write_text(json.dumps(record) + "\n")
        records, good_bytes, torn = read_journal(str(path))
        assert records == [] and good_bytes == 0 and torn == 1


class TestPendingFold:
    def test_done_jobs_drop_out(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        _seed(path)
        records, _, _ = read_journal(path)
        pending, attempts = pending_jobs(records)
        # job1 done, job3 requeued-then-done; 2 and 4 remain pending.
        assert sorted(pending) == ["job000000002", "job000000004"]
        assert pending["job000000002"]["spec"]["analysis"] == "2objH"
        assert attempts == {}

    def test_requeue_attempts_survive_for_pending_jobs(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j.jsonl"))
        journal.accepted("aaaa", SPEC)
        journal.requeue("aaaa", attempts=1, worker="w1")
        journal.requeue("aaaa", attempts=2, worker="w2")
        pending, attempts = journal.pending()
        journal.close()
        assert set(pending) == {"aaaa"}
        assert attempts == {"aaaa": 2}
