"""Executable-documentation tests: code blocks in docs/ must stay true."""

import re
from pathlib import Path

import pytest

from repro import analyze, encode_program
from repro.clients import check_casts
from repro.datalog import Engine, parse_program
from repro.frontend import parse_source

DOCS = Path(__file__).resolve().parent.parent / "docs"


def extract_block(path: Path, language: str, index: int = 0) -> str:
    blocks = re.findall(rf"```{language}\n(.*?)```", path.read_text(), re.S)
    assert len(blocks) > index, f"no {language} block #{index} in {path.name}"
    return blocks[index]


class TestSurfaceLanguageDoc:
    def test_worked_example_claims(self):
        code = extract_block(DOCS / "surface-language.md", "java")
        program = parse_source(code)
        facts = encode_program(program)

        insens = analyze(program, "insens", facts=facts)
        assert len(insens.points_to("Main.main/0/got")) == 2
        assert len(check_casts(insens, facts).may_fail) == 1

        obj = analyze(program, "2objH", facts=facts)
        assert obj.points_to("Main.main/0/got") == {"Main.main/0/new Circle/2"}
        assert check_casts(obj, facts).may_fail == frozenset()


class TestDatalogDoc:
    def test_rule_snippet_runs(self):
        rules = extract_block(DOCS / "datalog.md", "prolog")
        engine = Engine(parse_program(rules))
        engine.load(
            {
                "edge": [("root", "a"), ("a", "b"), ("a", "c")],
                "node": [("root",), ("a",), ("b",), ("z",)],
                "edge3": [("a", "b", 3), ("a", "c", 4)],
            }
        )
        engine.run()
        assert ("root", "b") in engine.query("path")
        assert engine.query("lonely") == {("root",), ("z",)}
        assert ("a", 2) in engine.query("outdeg")
        assert ("a", 7) in engine.query("heavy")


class TestAnalysesDoc:
    def test_custom_policy_snippet(self):
        code = extract_block(DOCS / "analyses.md", "python")
        # make the snippet self-contained: give it a program to analyze
        from tests.conftest import build_box_program

        namespace = {"program": build_box_program(), "analyze": analyze}
        exec(compile(code, "analyses.md", "exec"), namespace)
        result = namespace["result"]
        assert result.analysis_name == "2caller"
        assert "Box.get/0" in result.reachable_methods


class TestFuzzingDoc:
    def test_corpus_example_is_a_valid_entry_that_replays_clean(self):
        """The corpus-entry example in fuzzing.md must pass the real
        schema validation, build into a real program, and replay green."""
        import json

        from repro.fuzz import replay_entry, validate_entry
        from repro.fuzz.corpus import CORPUS_SCHEMA
        from repro.fuzz.sketch import ProgramSketch

        entry = json.loads(extract_block(DOCS / "fuzzing.md", "json"))
        assert entry["schema"] == CORPUS_SCHEMA
        validate_entry(entry)
        program = ProgramSketch.from_json(entry["program"]).build()
        assert program.entry_points
        assert replay_entry(entry) is None

    def test_oracle_and_mutator_catalogues_are_documented(self):
        """Every oracle and every mutator the code knows is named in the
        doc, and the doc names no oracle the code lacks."""
        import re as _re

        from repro.fuzz import MUTATORS, ORACLES

        text = (DOCS / "fuzzing.md").read_text()
        for name in list(ORACLES) + list(MUTATORS):
            assert f"`{name}`" in text, f"{name} missing from fuzzing.md"
        # the oracle table rows are single-name: they must all be real
        table = set(_re.findall(r"^\| `([a-z-]+)` \|", text, _re.M))
        assert set(ORACLES) <= table | set(MUTATORS)


class TestPerformanceDoc:
    def test_schema_example_matches_real_report(self):
        """The BENCH_solver.json example in performance.md must have
        exactly the keys a real harness report has."""
        import json

        from repro.harness.bench import BENCH_SCHEMA, run_suite

        example = json.loads(extract_block(DOCS / "performance.md", "json"))
        assert example["schema"] == BENCH_SCHEMA
        report = run_suite("tiny", flavors=("2objH",), repeat=1)
        assert set(example) == set(report)
        assert set(example["entries"][0]) == set(report["entries"][0])

    def test_datalog_schema_example_matches_real_report(self):
        """The BENCH_datalog.json example (second json block) must have
        exactly the keys a real Datalog-suite report has."""
        import json

        from repro.harness.bench import DATALOG_BENCH_SCHEMA, run_datalog_suite

        example = json.loads(
            extract_block(DOCS / "performance.md", "json", index=1)
        )
        assert example["schema"] == DATALOG_BENCH_SCHEMA
        report = run_datalog_suite("tiny", flavors=("2objH",), repeat=1)
        assert set(example) == set(report)
        assert set(example["entries"][0]) == set(report["entries"][0])

    def test_incremental_schema_example_matches_real_report(self):
        """The BENCH_incremental.json example (third json block) must
        have exactly the keys a real incremental-suite report has."""
        import json

        from repro.harness.bench import (
            INCREMENTAL_BENCH_SCHEMA,
            run_incremental_suite,
        )

        example = json.loads(
            extract_block(DOCS / "performance.md", "json", index=2)
        )
        assert example["schema"] == INCREMENTAL_BENCH_SCHEMA
        report = run_incremental_suite("tiny", flavors=("2objH",), repeat=1)
        assert set(example) == set(report)
        assert set(example["entries"][0]) == set(report["entries"][0])

    def test_parallel_schema_example_matches_real_report(self):
        """The BENCH_parallel.json example (fourth json block) must have
        exactly the keys a real parallel-scaling report has."""
        import json

        from repro.harness.bench import (
            PARALLEL_BENCH_SCHEMA,
            run_parallel_suite,
        )

        example = json.loads(
            extract_block(DOCS / "performance.md", "json", index=3)
        )
        assert example["schema"] == PARALLEL_BENCH_SCHEMA
        report = run_parallel_suite(
            "tiny", flavors=("2objH",), repeat=1, worker_counts=(1, 2)
        )
        assert set(example) == set(report)
        assert set(example["entries"][0]) == set(report["entries"][0])
        # The doc's wall-clock-speedup claim must match the harness:
        # every parallel cell appears in both speedup tables.
        for key in report["speedups_vs_sequential"]:
            assert key in report["speedups"]


class TestObservabilityDoc:
    def test_tracer_example_runs_and_schema_claims_hold(self):
        """Both python blocks in observability.md execute as written: the
        usage example against a real program, then the schema-claims
        block against the trace it produced."""
        from tests.conftest import build_box_program

        namespace = {"program": build_box_program()}
        usage = extract_block(DOCS / "observability.md", "python", index=0)
        exec(compile(usage, "observability.md#0", "exec"), namespace)
        schema = extract_block(DOCS / "observability.md", "python", index=1)
        exec(compile(schema, "observability.md#1", "exec"), namespace)
        assert namespace["summary"]["analysis.solve"]["count"] == 1
        assert "analysis.solve" in namespace["table"]

    def test_span_catalogue_is_complete(self):
        """Every span name the code emits is documented, and the doc
        documents no span the code cannot emit."""
        import re as _re
        import subprocess

        text = (DOCS / "observability.md").read_text()
        documented = set(_re.findall(r"^\| `([a-z._]+)` \|", text, _re.M))
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        emitted = set()
        for path in src.rglob("*.py"):
            if path.name == "tracer.py":
                continue
            emitted |= set(
                _re.findall(r"\.span\(\s*\"([a-z._]+)\"", path.read_text())
            )
        assert emitted == documented, emitted ^ documented


class TestIncrementalDoc:
    def test_usage_block_executes_as_written(self):
        """The python block in incremental.md is the subsystem's contract:
        it must run verbatim against a real program."""
        from tests.conftest import build_kitchen_sink_program

        namespace = {"program": build_kitchen_sink_program()}
        code = extract_block(DOCS / "incremental.md", "python")
        exec(compile(code, "incremental.md", "exec"), namespace)
        session = namespace["session"]
        assert session.check_against_scratch() == []
        assert session.tier_counts.get("monotonic", 0) >= 1

    def test_tier_table_matches_the_code(self):
        """Every tier the session can report is named in the doc's tier
        table, and the hazard relations the doc cites are the real ones."""
        from repro.incremental import MONOTONIC_HAZARDS

        text = (DOCS / "incremental.md").read_text()
        for tier in ("noop", "monotonic", "strata", "full"):
            assert f"`{tier}`" in text, tier
        for relation in MONOTONIC_HAZARDS - {"SITENOTTOREFINE", "OBJECTNOTTOREFINE"}:
            assert relation in text, relation

    def test_edit_vocabulary_is_complete(self):
        """Every JSON op the wire format accepts is named in the doc."""
        from repro.incremental.edits import _EDIT_OPS

        text = (DOCS / "incremental.md").read_text()
        for op in _EDIT_OPS:
            assert f"`{op}`" in text, op


class TestWarehouseDoc:
    def test_receipt_example_is_a_valid_receipt(self):
        """The receipt example in warehouse.md must pass the real schema
        validation and carry exactly the keys real receipts carry."""
        import json

        from repro.warehouse import (
            cells_of,
            receipt_from_bench_report,
            validate_receipt,
        )

        example = json.loads(extract_block(DOCS / "warehouse.md", "json"))
        validate_receipt(example)

        # Same shape as a receipt the producers actually write.
        report = json.loads(
            (DOCS.parent / "BENCH_solver.json").read_text()
        )
        real = receipt_from_bench_report(report)
        assert set(example) == set(real)
        assert set(example["provenance"]) == set(real["provenance"])

        # And it bins like one: a speedup cell per speedups entry.
        (cell,) = cells_of(example)
        assert cell["unit"] == "speedup"
        assert cell["value"] == 3.4

    def test_doc_names_every_kind_and_both_cli_surfaces(self):
        from repro.warehouse import KINDS

        text = (DOCS / "warehouse.md").read_text()
        for kind in KINDS:
            assert f"`{kind}`" in text, kind
        assert "--gate" in text and "--max-regression" in text
        assert "repro report" in text


class TestClusterDoc:
    def test_journal_record_example_is_valid_and_replayable(self):
        """The journal-record example in cluster.md must pass the real
        checksum validation, carry a spec that builds a real JobSpec, and
        fold into the pending set like any journaled acceptance."""
        import json

        from repro.cluster.journal import (
            JOURNAL_SCHEMA,
            pending_jobs,
            record_is_valid,
        )
        from repro.service import JobSpec

        record = json.loads(extract_block(DOCS / "cluster.md", "json"))
        assert record["schema"] == JOURNAL_SCHEMA
        assert record_is_valid(record)

        spec = JobSpec.from_payload(record["spec"])
        assert spec.benchmark == "antlr"
        pending, attempts = pending_jobs([record])
        assert set(pending) == {record["id"]}
        assert attempts == {}

    def test_doc_names_every_record_type_route_and_flag(self):
        from repro.cluster.journal import _RECORD_TYPES

        text = (DOCS / "cluster.md").read_text()
        for record_type in _RECORD_TYPES:
            assert f"`{record_type}`" in text, record_type
        for route in (
            "/cluster/workers",
            "/cluster/lease",
            "/cluster/complete",
            "/cluster/cache/{key}",
            "GET /cluster",
        ):
            assert route in text, route
        for flag in (
            "--journal",
            "--heartbeat-timeout",
            "--max-retries",
            "--max-queue-depth",
            "--rate-limit",
        ):
            assert flag in text, flag


class TestQueriesDoc:
    def test_usage_block_executes_as_written(self):
        """The python block in queries.md is the engine's contract: it
        must run verbatim against a real program."""
        from tests.conftest import build_box_program

        namespace = {"program": build_box_program()}
        code = extract_block(DOCS / "queries.md", "python")
        exec(compile(code, "queries.md", "exec"), namespace)
        assert namespace["answer"].points_to  # non-empty under 2objH

    def test_bench_schema_example_matches_real_report(self):
        """The BENCH_demand.json example (third json block) must have
        exactly the keys a real demand-suite report has."""
        import json

        from repro.harness.bench import DEMAND_BENCH_SCHEMA, run_demand_suite

        example = json.loads(
            extract_block(DOCS / "queries.md", "json", index=2)
        )
        assert example["schema"] == DEMAND_BENCH_SCHEMA
        report = run_demand_suite(
            "tiny", flavors=("2objH",), repeat=1, queries=2
        )
        assert set(example) == set(report)
        assert set(example["entries"][0]) == set(report["entries"][0])
        # Every cell appears twice: once per query mode.
        for key in report["speedups"]:
            assert key.rsplit("/", 1)[1] in ("query", "batch")

    def test_http_payload_examples_match_service(self):
        """The request/response examples (first two json blocks) must
        round-trip through the real service handler with exactly the
        documented key sets, error slot included."""
        import json

        from repro.service import AnalysisService

        request = json.loads(extract_block(DOCS / "queries.md", "json", 0))
        response = json.loads(extract_block(DOCS / "queries.md", "json", 1))

        service = AnalysisService(workers=0)
        try:
            real = service.run_queries(dict(request))
            assert set(real) == set(response)
            assert real["flavor"] == request["flavor"]
            ok_example = next(
                a for a in response["answers"] if "error" not in a
            )
            ok_real = next(a for a in real["answers"] if "error" not in a)
            assert set(ok_real) == set(ok_example)

            # A starved budget must produce the documented error slot.
            # (A fresh flavor, so the engine's answer memo cannot serve
            # the repeat without re-solving.)
            starved = service.run_queries(
                {**request, "flavor": "2typeH", "max_tuples": 1}
            )
            err_example = next(
                a for a in response["answers"] if "error" in a
            )
            err_real = next(a for a in starved["answers"] if "error" in a)
            assert set(err_real) == set(err_example)
            assert set(err_real["error"]) == set(err_example["error"])
        finally:
            service.stop()
