"""`repro bench --incremental` smoke: schema, equality gate, speedups."""

from __future__ import annotations

import math

import pytest

from repro.harness.bench import (
    INCREMENTAL_BENCH_SCHEMA,
    INCREMENTAL_EDIT_KINDS,
    run_incremental_suite,
)


@pytest.fixture(scope="module")
def report():
    return run_incremental_suite(suite="tiny", repeat=1)


def test_schema_and_shape(report):
    assert report["schema"] == INCREMENTAL_BENCH_SCHEMA
    assert report["suite"] == "tiny"
    assert report["engines"] == ["warm", "scratch"]
    assert report["edit_kinds"] == list(INCREMENTAL_EDIT_KINDS)
    assert report["entries"], "no cells measured"
    for entry in report["entries"]:
        assert entry["cpu_seconds"] > 0
        assert entry["scratch_cpu_seconds"] > 0
        assert entry["tiers"], entry
        assert entry["relations_checked"] == [
            "VARPOINTSTO",
            "FLDPOINTSTO",
            "CALLGRAPH",
            "REACHABLE",
            "THROWPOINTSTO",
        ]


def test_speedups_cover_every_cell_and_geomean_agrees(report):
    expected = {
        f"{e['benchmark']}/{e['flavor']}/{e['edit']}" for e in report["entries"]
    }
    assert set(report["speedups"]) == expected
    geomean = math.exp(
        sum(math.log(s) for s in report["speedups"].values())
        / len(report["speedups"])
    )
    assert report["geomean_speedup"] == pytest.approx(geomean, abs=1e-3)


def test_single_edit_cells_stay_on_the_fast_tier(report):
    # The bench generates pure-addition single edits; every cell should be
    # absorbed monotonically — a silent fall back to "full" would inflate
    # warm timings and must be visible in the data.
    for entry in report["entries"]:
        assert set(entry["tiers"]) == {"monotonic"}, entry
