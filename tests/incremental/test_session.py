"""Warm sessions must equal from-scratch on every tier, both engines."""

from __future__ import annotations

import random

import pytest

from repro.fuzz.sketch import ProgramSketch
from repro.incremental.edits import (
    AddClass,
    EditScript,
    RemoveClass,
    random_edit_script,
)
from repro.incremental.session import (
    RESULT_RELATIONS,
    IncrementalSession,
)
from tests.conftest import (
    build_box_program,
    build_kitchen_sink_program,
    build_tiny_program,
)

PROGRAMS = {
    "tiny": build_tiny_program,
    "boxes": build_box_program,
    "kitchen-sink": build_kitchen_sink_program,
}
ENGINES = ("solver", "datalog")


def make_session(name="kitchen-sink", engine="solver", analysis="2objH"):
    sketch = ProgramSketch.from_program(PROGRAMS[name]())
    return IncrementalSession(sketch, analysis=analysis, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_edit_sequences_stay_equivalent_to_scratch(engine, name):
    session = make_session(name, engine)
    rng = random.Random(f"{engine}/{name}")
    for step in range(4):
        script = random_edit_script(session.sketch, rng, edits=2)
        out = session.apply(script)
        assert out.tier in ("noop", "monotonic", "strata", "full")
        assert session.check_against_scratch() == [], (engine, name, step)
    assert session.edits_applied >= 4
    assert sum(session.tier_counts.values()) == 4


@pytest.mark.parametrize("engine", ENGINES)
def test_monotonic_tier_taken_for_pure_additions(engine):
    session = make_session(engine=engine)
    rng = random.Random(11)
    script = random_edit_script(
        session.sketch, rng, edits=1, allow_removals=False, kinds=("alloc",)
    )
    out = session.apply(script)
    assert out.tier == "monotonic"
    assert not out.result_removed
    assert session.check_against_scratch() == []


@pytest.mark.parametrize("engine", ENGINES)
def test_deletion_takes_a_recompute_tier(engine):
    session = make_session(engine=engine)
    rng = random.Random(13)
    script = random_edit_script(session.sketch, rng, edits=1, kinds=("delete",))
    out = session.apply(script)
    assert out.tier == ("strata" if engine == "datalog" else "full")
    assert session.check_against_scratch() == []


def test_noop_script_reports_noop_and_empty_deltas():
    session = make_session()
    before = session.relations()
    out = session.apply(EditScript([AddClass("ZTemp"), RemoveClass("ZTemp")]))
    assert out.tier == "noop"
    assert not out.result_added and not out.result_removed
    assert session.relations() == before


def test_result_delta_matches_relation_diff_exactly():
    # The solver's O(delta) reported additions must equal the brute-force
    # before/after set difference — the cheap path may not drop or invent
    # a single tuple.
    session = make_session(engine="solver")
    rng = random.Random(17)
    for _ in range(3):
        before = session.relations()
        script = random_edit_script(
            session.sketch, rng, edits=1, allow_removals=False
        )
        out = session.apply(script)
        after = session.relations()
        for name in RESULT_RELATIONS:
            plus = after[name] - before[name]
            minus = before[name] - after[name]
            assert out.result_added.get(name, frozenset()) == plus, name
            assert out.result_removed.get(name, frozenset()) == minus, name


def test_failed_edit_leaves_session_consistent():
    session = make_session()
    digest = session.facts.digest()
    before = session.relations()
    with pytest.raises(Exception):
        session.apply(EditScript([RemoveClass("NoSuchClass")]))
    assert session.facts.digest() == digest
    assert session.relations() == before
    assert session.check_against_scratch() == []
    # ... and the session still accepts edits afterwards.
    out = session.apply(EditScript([AddClass("ZAfter")]))
    assert out.tier in ("noop", "monotonic", "strata", "full")


def test_budget_trip_mid_extend_keeps_session_usable():
    # A tuple budget that survives the initial solve but trips during a
    # later extension must not poison the warm engine: the session
    # recovers to its previous state and keeps answering.
    sketch = ProgramSketch.from_program(build_kitchen_sink_program())
    probe = IncrementalSession(sketch, analysis="2objH", engine="solver")
    budget = len(probe.relations()["VARPOINTSTO"]) + 40

    session = IncrementalSession(
        sketch, analysis="2objH", engine="solver", max_tuples=budget
    )
    digest = session.facts.digest()
    rng = random.Random(23)
    tripped = False
    for _ in range(20):
        script = random_edit_script(
            session.sketch, rng, edits=2, allow_removals=False
        )
        try:
            session.apply(script)
            digest = session.facts.digest()
        except Exception:
            tripped = True
            break
    assert tripped, "budget never tripped; test needs a smaller margin"
    assert session.facts.digest() == digest
    assert session.check_against_scratch() == []


def test_outcome_payload_is_json_shaped():
    import json

    session = make_session()
    out = session.apply(
        random_edit_script(session.sketch, random.Random(29), edits=2)
    )
    payload = out.to_payload(max_rows_per_relation=5)
    encoded = json.dumps(payload)  # must not raise
    assert json.loads(encoded)["tier"] == out.tier
    for rel in payload["result_delta"]["added"].values():
        assert len(rel["rows"]) <= 5
        assert rel["count"] >= len(rel["rows"])
    assert payload["timing"]["apply_seconds"] >= 0
    assert payload["timing"]["solve_seconds"] >= 0
