"""Fact differ and tier classification."""

from __future__ import annotations

import random

from repro.facts.encoder import encode_program
from repro.fuzz.sketch import ProgramSketch
from repro.incremental.differ import (
    MONOTONIC_HAZARDS,
    classify_delta,
    diff_facts,
)
from repro.incremental.edits import random_edit_script
from repro.incremental.resume import negation_tainted
from tests.conftest import build_kitchen_sink_program, build_tiny_program


def delta_for(script, sketch):
    before = encode_program(sketch.build())
    script.apply(sketch)
    after = encode_program(sketch.build())
    return diff_facts(before, after), before


def test_identity_diff_is_empty():
    facts = encode_program(build_tiny_program())
    delta = diff_facts(facts, facts)
    assert delta.is_empty
    assert delta.rows_added == delta.rows_removed == 0
    assert classify_delta(delta, frozenset()) == ("noop", "no fact changes")


def test_pure_addition_is_monotonic():
    sketch = ProgramSketch.from_program(build_kitchen_sink_program())
    old_methods = {m.id for m in sketch.build().methods()}
    script = random_edit_script(
        sketch, random.Random(3), edits=1, allow_removals=False, kinds=("alloc",)
    )
    delta, _ = delta_for(script, sketch)
    assert not delta.removed
    tier, reason = classify_delta(delta, old_methods)
    assert tier == "monotonic"
    assert "pure additions" in reason


def test_deletion_forces_recompute():
    sketch = ProgramSketch.from_program(build_kitchen_sink_program())
    old_methods = {m.id for m in sketch.build().methods()}
    script = random_edit_script(
        sketch, random.Random(5), edits=1, kinds=("delete",)
    )
    delta, _ = delta_for(script, sketch)
    assert delta.removed
    tier, reason = classify_delta(delta, old_methods)
    assert tier == "recompute"
    assert "retractions" in reason


def test_hazard_addition_forces_recompute():
    from repro.incremental.differ import FactDelta

    delta = FactDelta(
        added={"SUBTYPE": frozenset({("A", "B")})},
        removed={},
    )
    tier, reason = classify_delta(delta, frozenset())
    assert tier == "recompute"
    assert "SUBTYPE" in reason


def test_method_structure_on_old_method_forces_recompute():
    from repro.incremental.differ import FactDelta

    delta = FactDelta(
        added={"FORMALARG": frozenset({("Old.m/1", 0, "p")})},
        removed={},
    )
    assert classify_delta(delta, {"Old.m/1"})[0] == "recompute"
    # ... but the same addition on a brand-new method is monotonic.
    assert classify_delta(delta, frozenset())[0] == "monotonic"


def test_call_structure_on_old_invocation_forces_recompute():
    from repro.incremental.differ import FactDelta

    delta = FactDelta(
        added={"ACTUALARG": frozenset({("invo7", 0, "arg")})},
        removed={},
    )
    assert classify_delta(delta, frozenset(), {"invo7"})[0] == "recompute"
    assert classify_delta(delta, frozenset(), frozenset())[0] == "monotonic"


def test_hazard_set_covers_negation_tainted_edb():
    # The frozen hazard constant must stay a superset of what the Datalog
    # model actually derives into negated predicates; if a rule change
    # taints a new EDB relation this pins the constant to the derivation.
    from repro.analysis.datalog_model import DatalogPointsToAnalysis
    from repro.contexts.policies import policy_by_name

    program = build_tiny_program()
    facts = encode_program(program)
    policy = policy_by_name("insens", alloc_class_of=facts.alloc_class_of)
    model = DatalogPointsToAnalysis(program, policy, facts=facts)
    tainted = negation_tainted(model.rule_program)
    edb = set(facts.as_relation_dict())
    assert (tainted & edb) <= MONOTONIC_HAZARDS
