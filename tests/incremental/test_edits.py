"""The edit vocabulary: invertibility, JSON round-trips, rollback."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facts.encoder import encode_program
from repro.fuzz.sketch import ProgramSketch
from repro.incremental.edits import (
    AddClass,
    AddEntryPoint,
    AddMethod,
    DeleteInstruction,
    EditError,
    EditScript,
    InsertInstruction,
    RemoveClass,
    edit_from_json,
    random_edit_script,
)
from repro.ir.instructions import Alloc, Move, Return
from tests.conftest import (
    build_box_program,
    build_kitchen_sink_program,
    build_tiny_program,
)

PROGRAMS = {
    "tiny": build_tiny_program,
    "boxes": build_box_program,
    "kitchen-sink": build_kitchen_sink_program,
}


def sketch_of(name: str) -> ProgramSketch:
    return ProgramSketch.from_program(PROGRAMS[name]())


def digest_of(sketch: ProgramSketch) -> str:
    return encode_program(sketch.build()).digest()


# ----------------------------------------------------------------------
# Apply-then-revert restores the exact fact digest (property test)
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    name=st.sampled_from(sorted(PROGRAMS)),
    edits=st.integers(min_value=1, max_value=4),
)
def test_apply_then_revert_restores_fact_digest(seed, name, edits):
    sketch = sketch_of(name)
    before = digest_of(sketch)
    script = random_edit_script(sketch, random.Random(seed), edits=edits)
    inverse = script.apply(sketch)
    inverse.apply(sketch)
    assert digest_of(sketch) == before


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    name=st.sampled_from(sorted(PROGRAMS)),
)
def test_material_edit_changes_fact_digest(seed, name):
    # random_edit_script only emits *material* edits — every generated
    # script must move the fact digest (that is what makes the digest
    # round-trip above a real statement and not a vacuous one).
    sketch = sketch_of(name)
    before = digest_of(sketch)
    script = random_edit_script(sketch, random.Random(seed), edits=1)
    script.apply(sketch)
    assert digest_of(sketch) != before


def test_single_nonidentity_edit_changes_digest_each_kind():
    for kind in ("alloc", "move", "new-call", "new-entry", "delete"):
        sketch = sketch_of("kitchen-sink")
        before = digest_of(sketch)
        script = random_edit_script(
            sketch, random.Random(7), edits=1, kinds=(kind,)
        )
        assert len(script) >= 1, kind
        script.apply(sketch)
        assert digest_of(sketch) != before, kind


# ----------------------------------------------------------------------
# JSON round-trips
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    name=st.sampled_from(sorted(PROGRAMS)),
)
def test_script_json_round_trip_is_semantics_preserving(seed, name):
    sketch = sketch_of(name)
    script = random_edit_script(sketch, random.Random(seed), edits=3)
    restored = EditScript.from_json(script.to_json())

    a, b = sketch.clone(), sketch.clone()
    script.apply(a)
    restored.apply(b)
    assert digest_of(a) == digest_of(b)


def test_edit_from_json_rejects_junk():
    with pytest.raises(EditError, match="unknown edit op"):
        edit_from_json({"op": "explode"})
    with pytest.raises(EditError, match="missing key"):
        edit_from_json({"op": "add-class"})
    with pytest.raises(EditError):
        edit_from_json("not an object")


# ----------------------------------------------------------------------
# Targeted invariants
# ----------------------------------------------------------------------
def test_failed_script_rolls_back_earlier_edits():
    sketch = sketch_of("tiny")
    before = digest_of(sketch)
    script = EditScript(
        [
            AddClass("ZRoll"),
            RemoveClass("NoSuchClassAnywhere"),  # fails
        ]
    )
    with pytest.raises(EditError, match="no such class"):
        script.apply(sketch)
    assert "ZRoll" not in sketch.classes
    assert digest_of(sketch) == before


def test_add_method_inverse_removes_entry_point_too():
    sketch = sketch_of("tiny")
    before = digest_of(sketch)
    add = AddMethod(
        next(iter(sketch.classes)),
        "zEntry",
        is_static=True,
        instructions=[Alloc("zv", next(iter(sketch.classes))), Return("zv")],
    )
    script = EditScript([add])
    inv1 = script.apply(sketch)
    entry = EditScript([AddEntryPoint(add.method.id)])
    inv2 = entry.apply(sketch)
    assert digest_of(sketch) != before
    inv2.apply(sketch)
    inv1.apply(sketch)
    assert digest_of(sketch) == before


def test_insert_delete_instruction_are_inverse():
    sketch = sketch_of("boxes")
    method = sketch.methods[0]
    before = digest_of(sketch)
    ins = InsertInstruction(method.id, Move("zm", method.local_vars()[0]))
    inverse = EditScript([ins]).apply(sketch)
    assert isinstance(inverse.edits[0], DeleteInstruction)
    inverse.apply(sketch)
    assert digest_of(sketch) == before


def test_remove_class_refuses_while_methods_remain():
    sketch = sketch_of("tiny")
    owner = sketch.methods[0].class_name
    with pytest.raises(EditError, match="still declares methods"):
        RemoveClass(owner).apply(sketch)


def test_duplicate_class_refused():
    sketch = sketch_of("tiny")
    existing = next(iter(sketch.classes))
    with pytest.raises(EditError, match="already declared"):
        AddClass(existing).apply(sketch)
