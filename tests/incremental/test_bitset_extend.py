"""Warm-extend coverage on the int-bitset representation.

The bitset rewrite of :mod:`repro.analysis.solver` replaced per-variable
``set()`` points-to sets with arbitrary-precision ``int`` masks.  The
resumable-worklist path (:meth:`PointsToSolver.extend`) and the sessions
built on it must be bit-for-bit unchanged by that swap: warm edits report
exactly the deltas a from-scratch diff would, fact digests stay
deterministic across identically-seeded sessions, and the solver's
internal state really is integer masks (a regression back to sets must
fail loudly here, not just run slower).
"""

from __future__ import annotations

import random

from repro.analysis.solver import PointsToSolver, solve
from repro.contexts.policies import policy_by_name
from repro.facts.encoder import encode_program
from repro.fuzz.oracles import solver_relations
from repro.fuzz.sketch import ProgramSketch
from repro.incremental.differ import diff_facts
from repro.incremental.edits import random_edit_script
from repro.incremental.session import RESULT_RELATIONS, IncrementalSession
from tests.conftest import build_kitchen_sink_program


def policy_for(flavor, facts):
    return policy_by_name(flavor, alloc_class_of=facts.alloc_class_of)


def edited_sketch(seed, kinds=None):
    """The kitchen-sink program plus one seeded pure-addition edit."""
    sketch = ProgramSketch.from_program(build_kitchen_sink_program())
    rng = random.Random(seed)
    script = random_edit_script(
        sketch.clone(), rng, edits=1, allow_removals=False, kinds=kinds
    )
    return sketch, script


def test_pts_state_is_int_masks():
    sketch = ProgramSketch.from_program(build_kitchen_sink_program())
    program = sketch.build()
    facts = encode_program(program)
    solver = PointsToSolver(program, policy_for("2objH", facts), facts=facts)
    solver.solve()
    assert solver._pts, "solver derived no points-to state"
    assert all(isinstance(mask, int) for mask in solver._pts)
    assert all(isinstance(mask, int) for mask in solver._filter_pairs.values())


def test_extend_delta_equals_scratch_diff():
    """extend() on a warm bitset solver reports exactly the tuples a
    brute-force before/after relation diff finds, and lands on the same
    fixpoint (tuple count included) as a from-scratch solve."""
    sketch, script = edited_sketch(seed=31, kinds=("alloc",))
    program = sketch.build()
    facts = encode_program(program)
    solver = PointsToSolver(program, policy_for("2objH", facts), facts=facts)
    before = solver_relations(solver.solve())

    edited = sketch.clone()
    script.apply(edited)
    program2 = edited.build()
    facts2 = encode_program(program2)
    delta = diff_facts(facts, facts2)
    assert delta.added and not delta.removed

    warm_raw, added = solver.extend(program2, facts2, delta.added)
    after = solver_relations(warm_raw)

    scratch_raw = solve(
        program2, policy_for("2objH", facts2), facts=facts2
    )
    assert warm_raw.tuple_count == scratch_raw.tuple_count
    assert after == solver_relations(scratch_raw)
    for name, was, now in zip(RESULT_RELATIONS, before, after):
        assert frozenset(added.get(name, ())) == now - was, name
        assert was <= now, name  # pure additions are monotone


def test_identically_seeded_warm_sessions_agree_exactly():
    """Two warm sessions fed the same seeded edit stream must report the
    identical tier, result deltas, and fact digest at every step — the
    bitset masks introduce no iteration-order or hashing nondeterminism
    into the O(delta) reporting path."""

    def run():
        session = IncrementalSession(
            ProgramSketch.from_program(build_kitchen_sink_program()),
            analysis="2objH",
            engine="solver",
        )
        rng = random.Random(37)
        trail = []
        for step in range(3):
            script = random_edit_script(
                session.sketch, rng, edits=2, allow_removals=step == 2
            )
            out = session.apply(script)
            trail.append(
                (
                    out.tier,
                    out.result_added,
                    out.result_removed,
                    session.facts.digest(),
                )
            )
        return session, trail

    a, trail_a = run()
    b, trail_b = run()
    assert trail_a == trail_b
    assert a.relations() == b.relations()


def test_warm_session_digest_and_relations_match_cold_rebuild():
    """After a warm edit sequence, a cold session on the final sketch
    reproduces both the relations and the content-addressed digest —
    warm-extend leaves no representation residue in the facts."""
    session = IncrementalSession(
        ProgramSketch.from_program(build_kitchen_sink_program()),
        analysis="2objH",
        engine="solver",
    )
    rng = random.Random(41)
    for _ in range(3):
        script = random_edit_script(
            session.sketch, rng, edits=2, allow_removals=False
        )
        session.apply(script)

    cold = IncrementalSession(
        session.sketch.clone(), analysis="2objH", engine="solver"
    )
    assert cold.facts.digest() == session.facts.digest()
    assert cold.relations() == session.relations()
    assert session.check_against_scratch() == []
