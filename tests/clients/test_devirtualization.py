"""Tests for the devirtualization client."""

import pytest

from repro import ProgramBuilder, analyze, encode_program
from repro.clients import devirtualize


@pytest.fixture(scope="module")
def setup():
    b = ProgramBuilder()
    b.klass("Base", abstract=True)
    b.klass("X", super_name="Base")
    b.klass("Y", super_name="Base")
    for cls in ("X", "Y"):
        with b.method(cls, "go", []) as m:
            m.ret("this")
    with b.method("Main", "main", [], static=True) as m:
        m.alloc("x", "X")
        m.alloc("y", "Y")
        m.vcall("x", "go", [], target="a")  # mono
        m.move("e", "x")
        m.move("e", "y")
        m.vcall("e", "go", [], target="b")  # poly
        m.vcall("x", "nothere", [])  # unresolved
    p = b.build(entry="Main.main/0", validate=True)
    facts = encode_program(p)
    return facts, analyze(p, "insens", facts=facts)


def test_classification(setup):
    facts, result = setup
    report = devirtualize(result, facts)
    assert report.monomorphic == {"Main.main/0/invo/0"}
    assert report.polymorphic == {"Main.main/0/invo/1"}
    assert report.unresolved == {"Main.main/0/invo/2"}


def test_ratios(setup):
    facts, result = setup
    report = devirtualize(result, facts)
    assert report.total_reachable == 2
    assert report.devirtualization_ratio == pytest.approx(0.5)
    assert "devirtualizable 1/2" in report.summary()


def test_empty_program_ratio():
    b = ProgramBuilder()
    with b.method("Main", "main", [], static=True) as m:
        m.ret()
    p = b.build(entry="Main.main/0")
    facts = encode_program(p)
    report = devirtualize(analyze(p, "insens", facts=facts), facts)
    assert report.devirtualization_ratio == 1.0
    assert report.total_reachable == 0
