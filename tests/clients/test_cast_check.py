"""Tests for the cast-safety client."""

import pytest

from repro import ProgramBuilder, analyze, encode_program
from repro.clients import check_casts


@pytest.fixture(scope="module")
def setup():
    b = ProgramBuilder()
    b.klass("A")
    b.klass("B", super_name="A")
    with b.method("Dead", "never", [], static=True) as m:
        m.alloc("x", "A")
        m.cast("dead", "x", "B")
    with b.method("Main", "main", [], static=True) as m:
        m.alloc("a", "A")
        m.alloc("b", "B")
        m.cast("up", "b", "A")  # safe upcast
        m.move("mix", "a")
        m.move("mix", "b")
        m.cast("down", "mix", "B")  # may fail
    p = b.build(entry="Main.main/0")
    facts = encode_program(p)
    return facts, analyze(p, "insens", facts=facts)


def test_verdicts(setup):
    facts, result = setup
    report = check_casts(result, facts)
    assert report.safe == {"Main.main/0/up"}
    assert report.may_fail == {"Main.main/0/down"}
    assert report.unreachable == {"Dead.never/0/dead"}


def test_witness_recorded(setup):
    facts, result = setup
    report = check_casts(result, facts)
    failing = [v for v in report.verdicts if not v.safe]
    assert len(failing) == 1
    assert failing[0].witness == "Main.main/0/new A/0"
    assert failing[0].cast_type == "B"
    assert failing[0].method == "Main.main/0"


def test_safe_verdict_has_no_witness(setup):
    facts, result = setup
    safe = [v for v in check_casts(result, facts).verdicts if v.safe]
    assert all(v.witness == "" for v in safe)


def test_summary(setup):
    facts, result = setup
    assert check_casts(result, facts).summary() == (
        "safe 1, may-fail 1, unreachable 1"
    )


def test_empty_source_cast_is_safe():
    """A cast whose source points to nothing is trivially safe."""
    b = ProgramBuilder()
    b.klass("A")
    with b.method("Main", "main", [], static=True) as m:
        m.move("x", "unset")
        m.cast("y", "x", "A")
    p = b.build(entry="Main.main/0")
    facts = encode_program(p)
    report = check_casts(analyze(p, "insens", facts=facts), facts)
    assert report.may_fail == frozenset()
