"""Tests for the three paper precision metrics."""

import pytest

from repro import ProgramBuilder, analyze, encode_program
from repro.clients import measure_precision
from repro.clients.precision import casts_that_may_fail, polymorphic_vcall_sites


@pytest.fixture(scope="module")
def poly_setup():
    """One mono site, one poly site, one unreachable cast, one failing and
    one safe cast."""
    b = ProgramBuilder()
    b.klass("Animal", abstract=True)
    b.klass("Dog", super_name="Animal")
    b.klass("Cat", super_name="Animal")
    for cls in ("Dog", "Cat"):
        with b.method(cls, "speak", []) as m:
            m.ret("this")
    with b.method("Dead", "code", [], static=True) as m:
        m.alloc("x", "Dog")
        m.cast("y", "x", "Cat")  # unreachable: never counted
    with b.method("Main", "main", [], static=True) as m:
        m.alloc("d", "Dog")
        m.alloc("c", "Cat")
        m.vcall("d", "speak", [], target="r1")  # mono
        m.move("any", "d")
        m.move("any", "c")
        m.vcall("any", "speak", [], target="r2")  # poly
        m.cast("ok", "d", "Dog")  # safe
        m.cast("bad", "any", "Cat")  # may fail (any includes Dog)
    program = b.build(entry="Main.main/0")
    facts = encode_program(program)
    return program, facts, analyze(program, "insens", facts=facts)


class TestPolymorphicSites:
    def test_counts_only_poly_vcalls(self, poly_setup):
        _, facts, result = poly_setup
        poly = polymorphic_vcall_sites(result, facts)
        assert poly == {"Main.main/0/invo/1"}

    def test_static_calls_never_counted(self):
        b = ProgramBuilder()
        with b.method("U", "f", [], static=True) as m:
            m.ret()
        with b.method("Main", "main", [], static=True) as m:
            m.scall("U", "f", [])
        p = b.build(entry="Main.main/0")
        facts = encode_program(p)
        assert polymorphic_vcall_sites(analyze(p, "insens", facts=facts), facts) == frozenset()


class TestCasts:
    def test_failing_and_safe_casts(self, poly_setup):
        _, facts, result = poly_setup
        failing = casts_that_may_fail(result, facts)
        assert failing == {"Main.main/0/bad"}

    def test_unreachable_casts_not_counted(self, poly_setup):
        _, facts, result = poly_setup
        assert "Dead.code/0/y" not in casts_that_may_fail(result, facts)


class TestReport:
    def test_measure_precision_row(self, poly_setup):
        _, facts, result = poly_setup
        report = measure_precision(result, facts)
        assert report.polymorphic_call_sites == 1
        assert report.casts_may_fail == 1
        assert report.reachable_methods == 3  # main + 2 speaks
        row = report.row()
        assert row["poly-vcalls"] == 1 and row["casts-may-fail"] == 1

    def test_dominates(self, poly_setup):
        _, facts, result = poly_setup
        a = measure_precision(result, facts)
        assert a.dominates(a)
        better = type(a)(
            analysis="x",
            polymorphic_call_sites=0,
            reachable_methods=a.reachable_methods,
            casts_may_fail=0,
        )
        assert better.dominates(a)
        assert not a.dominates(better)
