"""Tests for the object-taint client: true leaks, false leaks, and how
context-sensitivity removes exactly the false ones."""

import pytest

from repro import ProgramBuilder, analyze, encode_program
from repro.clients.taint import (
    analyze_taint,
    sinks_of_method,
    sources_in_method,
)


@pytest.fixture(scope="module")
def two_users():
    """Two users' sessions share the Session container class.  User A's
    secret flows to A's own logger (a TRUE leak we planted); user B's
    logger only ever receives B's public data — but insensitively A's
    secret appears there too (a FALSE leak)."""
    b = ProgramBuilder()
    b.klass("Data", abstract=True)
    b.klass("Secret", super_name="Data")
    b.klass("Public", super_name="Data")
    b.klass("Session", fields=["payload"])
    with b.method("Session", "put", ["x"]) as m:
        m.store("this", "payload", "x")
    with b.method("Session", "get", []) as m:
        m.load("r", "this", "payload")
        m.ret("r")
    with b.method("Input", "readSecret", [], static=True) as m:
        m.alloc("s", "Secret")
        m.ret("s")
    with b.method("Log", "publish", ["msg"], static=True) as m:
        m.ret()
    with b.method("Main", "main", [], static=True) as m:
        # user A: secret into A's session, then published (true leak)
        m.alloc("sessA", "Session")
        m.scall("Input", "readSecret", [], target="secret")
        m.vcall("sessA", "put", ["secret"])
        m.vcall("sessA", "get", [], target="outA")
        m.scall("Log", "publish", ["outA"])
        # user B: only public data, also published (no real leak)
        m.alloc("sessB", "Session")
        m.alloc("pub", "Public")
        m.vcall("sessB", "put", ["pub"])
        m.vcall("sessB", "get", [], target="outB")
        m.scall("Log", "publish", ["outB"])
    program = b.build(entry="Main.main/0")
    facts = encode_program(program)
    sources = sources_in_method(facts, "Input.readSecret/0")
    sinks = sinks_of_method(facts, "Log.publish/1")
    return program, facts, sources, sinks


class TestDeclarations:
    def test_sources_are_method_allocs(self, two_users):
        _, _, sources, _ = two_users
        assert sources == {"Input.readSecret/0/new Secret/0"}

    def test_sinks_are_call_arguments(self, two_users):
        _, _, _, sinks = two_users
        # main's invocations: readSecret=0, putA=1, getA=2, publishA=3,
        # putB=4, getB=5, publishB=6
        assert {invo for invo, _a in sinks} == {
            "Main.main/0/invo/3",
            "Main.main/0/invo/6",
        }


class TestLeakDetection:
    def test_insensitive_reports_false_leak(self, two_users):
        program, facts, sources, sinks = two_users
        result = analyze(program, "insens", facts=facts)
        report = analyze_taint(result, facts, sources, sinks)
        # both publish sites appear to leak: the sessions conflate
        assert len(report.leaking_sinks) == 2

    def test_object_sensitivity_keeps_only_true_leak(self, two_users):
        program, facts, sources, sinks = two_users
        result = analyze(program, "2objH", facts=facts)
        report = analyze_taint(result, facts, sources, sinks)
        assert report.leaking_sinks == {"Main.main/0/invo/3"}  # user A only
        assert len(report.leaks) == 1
        assert report.leaks[0].tainted_heap == "Input.readSecret/0/new Secret/0"

    def test_summary(self, two_users):
        program, facts, sources, sinks = two_users
        result = analyze(program, "2objH", facts=facts)
        report = analyze_taint(result, facts, sources, sinks)
        assert "1 leak flows into 1 sinks (of 2 checked)" in report.summary()

    def test_unreachable_sink_not_checked(self, two_users):
        program, facts, sources, _ = two_users
        result = analyze(program, "insens", facts=facts)
        report = analyze_taint(
            result, facts, sources, {("ghost/invo/9", "ghost/x")}
        )
        assert report.sinks_checked == 0
        assert not report.leaks


class TestSanitizerByConstruction:
    def test_fresh_object_breaks_taint(self):
        """A sanitizer returning a fresh allocation is clean by identity."""
        b = ProgramBuilder()
        b.klass("Secret")
        b.klass("Clean")
        with b.method("San", "scrub", ["x"], static=True) as m:
            m.alloc("fresh", "Clean")
            m.ret("fresh")
        with b.method("Log", "publish", ["msg"], static=True) as m:
            m.ret()
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("secret", "Secret")
            m.scall("San", "scrub", ["secret"], target="clean")
            m.scall("Log", "publish", ["clean"])
        program = b.build(entry="Main.main/0")
        facts = encode_program(program)
        result = analyze(program, "insens", facts=facts)
        report = analyze_taint(
            result,
            facts,
            sources={"Main.main/0/new Secret/0"},
            sinks=sinks_of_method(facts, "Log.publish/1"),
        )
        assert not report.leaks
