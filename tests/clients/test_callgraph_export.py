"""Tests for the call-graph export client."""

import networkx as nx
import pytest

from repro import analyze, encode_program
from repro.clients.callgraph_export import export_call_graph


@pytest.fixture(scope="module")
def export(tiny_program_module):
    program, facts = tiny_program_module
    result = analyze(program, "insens", facts=facts)
    return export_call_graph(result, facts)


@pytest.fixture(scope="module")
def tiny_program_module():
    from tests.conftest import build_tiny_program

    program = build_tiny_program()
    return program, encode_program(program)


class TestStructure:
    def test_edges(self, export):
        assert export.edges == frozenset(
            {("Main.main/0", "A.id/1"), ("Main.main/0", "B.id/1")}
        )

    def test_nodes_include_entries(self, export):
        assert export.nodes == {"Main.main/0", "A.id/1", "B.id/1"}

    def test_successors(self, export):
        assert export.successors("Main.main/0") == {"A.id/1", "B.id/1"}
        assert export.successors("A.id/1") == frozenset()

    def test_leaves_and_degree(self, export):
        assert export.leaves == {"A.id/1", "B.id/1"}
        assert export.max_out_degree == 2

    def test_adjacency_sorted(self, export):
        adj = export.adjacency()
        assert adj["Main.main/0"] == ["A.id/1", "B.id/1"]
        assert adj["A.id/1"] == []

    def test_summary(self, export):
        assert export.summary() == (
            "3 methods, 2 edges, 2 leaves, max out-degree 2"
        )


class TestExports:
    def test_dot_output(self, export):
        dot = export.to_dot()
        assert dot.startswith("digraph callgraph {")
        assert '"Main.main/0" -> "A.id/1";' in dot
        assert '"Main.main/0" [peripheries=2];' in dot
        assert dot.endswith("}")

    def test_dot_label_truncation(self, export):
        dot = export.to_dot(max_label=6)
        assert "Main.…" in dot

    def test_networkx_roundtrip(self, export):
        graph = export.to_networkx()
        assert isinstance(graph, nx.DiGraph)
        assert set(graph.edges()) == set(export.edges)
        assert nx.has_path(graph, "Main.main/0", "B.id/1")


class TestEmptyGraph:
    def test_trivial_program(self):
        from repro import ProgramBuilder

        b = ProgramBuilder()
        with b.method("Main", "main", [], static=True) as m:
            m.ret()
        program = b.build(entry="Main.main/0")
        facts = encode_program(program)
        export = export_call_graph(analyze(program, "insens", facts=facts), facts)
        assert export.edges == frozenset()
        assert export.nodes == {"Main.main/0"}
        assert export.max_out_degree == 0
