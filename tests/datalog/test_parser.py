"""Tests for the Datalog text parser."""

import pytest

from repro.datalog import AggregateRule, NegAtom, ParseError, Rule, V, parse_program, parse_rule
from repro.datalog.terms import Atom


class TestTerms:
    def test_uppercase_is_variable(self):
        rule = parse_rule("p(X) :- q(X).")
        assert rule.heads[0].args == (V.X,)

    def test_lowercase_is_constant(self):
        rule = parse_rule("p(X) :- q(X, root).")
        assert rule.body[0].args == (V.X, "root")

    def test_quoted_strings(self):
        rule = parse_rule("p(X) :- q(X, 'hello world'), r(X, \"two\").")
        assert rule.body[0].args[1] == "hello world"
        assert rule.body[1].args[1] == "two"

    def test_numbers(self):
        rule = parse_rule("p(X) :- q(X, 42), r(X, -7).")
        assert rule.body[0].args[1] == 42
        assert rule.body[1].args[1] == -7

    def test_wildcard(self):
        rule = parse_rule("p(X) :- q(X, _).")
        arg = rule.body[0].args[1]
        assert arg.is_wildcard

    def test_dotted_identifiers(self):
        rule = parse_rule("p(X) :- q(X, 'java.lang.Object').")
        assert rule.body[0].args[1] == "java.lang.Object"


class TestRules:
    def test_negation(self):
        rule = parse_rule("p(X) :- q(X), !r(X).")
        assert isinstance(rule.body[1], NegAtom)

    def test_zero_arg_atom(self):
        rule = parse_rule("p(X) :- q(X), flag().")
        assert rule.body[1] == Atom("flag")

    def test_comments_ignored(self):
        program = parse_program(
            """
            % setup
            p(X) :- q(X).  % copy
            """
        )
        assert len(program.rules) == 1

    def test_aggregate_rule(self):
        rule = parse_rule("deg(X, N) :- agg<N = count()>(edge(X, Y)).")
        assert isinstance(rule, AggregateRule)
        assert rule.group_vars == (V.X,)
        assert rule.agg_var == V.N

    def test_aggregate_result_must_be_last_head_arg(self):
        with pytest.raises(ParseError, match="last argument"):
            parse_rule("deg(N, X) :- agg<N = count()>(edge(X, Y)).")

    def test_unsupported_aggregate(self):
        with pytest.raises(ParseError, match="unsupported aggregate"):
            parse_rule("s(X, N) :- agg<N = median(W)>(edge(X, Y, W)).")

    def test_value_aggregates(self):
        rule = parse_rule("s(X, N) :- agg<N = sum(W)>(edge(X, Y, W)).")
        assert rule.kind == "sum"
        assert rule.value_var == V.W
        rule = parse_rule("m(X, N) :- agg<N = max(W)>(edge(X, Y, W)).")
        assert rule.kind == "max"

    def test_value_aggregate_needs_variable(self):
        with pytest.raises(ParseError, match="value must be a variable"):
            parse_rule("s(X, N) :- agg<N = sum(3)>(edge(X, Y)).")


class TestProgram:
    def test_edb_inferred(self):
        program = parse_program(
            """
            p(X) :- e(X).
            q(X) :- p(X), f(X).
            """
        )
        assert program.edb == {"e", "f"}
        assert program.idb == {"p", "q"}

    def test_explicit_edb(self):
        program = parse_program("p(X) :- e(X).", edb=["e"])
        assert program.edb == {"e"}


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_program("p(X) :- q(X) @ r(X).")

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- q(X)")

    def test_bad_head(self):
        with pytest.raises(ParseError):
            parse_program("42(X) :- q(X).")

    def test_trailing_garbage_single_rule(self):
        with pytest.raises(ParseError, match="trailing input"):
            parse_rule("p(X) :- q(X). extra")

    def test_error_reports_line(self):
        with pytest.raises(ParseError, match="line 3"):
            parse_program("p(X) :- q(X).\n\np(X) :- q(X) ? r(X).")
