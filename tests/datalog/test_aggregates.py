"""Tests for the value aggregates (sum/min/max) and their helpers."""

import pytest

from repro.datalog import (
    Atom,
    Engine,
    RuleError,
    RuleProgram,
    V,
    count,
    max_,
    min_,
    parse_program,
    sum_,
)


def run(text, facts):
    engine = Engine(parse_program(text))
    engine.load(facts)
    engine.run()
    return engine


class TestValueAggregates:
    def test_sum_min_max(self):
        e = run(
            """
            total(X, S) :- agg<S = sum(W)>(edge(X, Y, W)).
            hi(X, M)    :- agg<M = max(W)>(edge(X, Y, W)).
            lo(X, M)    :- agg<M = min(W)>(edge(X, Y, W)).
            """,
            {"edge": [("a", 1, 10), ("a", 2, 5), ("b", 1, 7)]},
        )
        assert e.query("total") == {("a", 15), ("b", 7)}
        assert e.query("hi") == {("a", 10), ("b", 7)}
        assert e.query("lo") == {("a", 5), ("b", 7)}

    def test_sum_over_distinct_witnesses(self):
        """A duplicate input tuple contributes once (set semantics)."""
        e = run(
            "total(X, S) :- agg<S = sum(W)>(edge(X, Y, W)).",
            {"edge": [("a", 1, 10), ("a", 1, 10)]},
        )
        assert e.query("total") == {("a", 10)}

    def test_two_level_count_then_max(self):
        """The count-then-max idiom used by the metric queries."""
        e = run(
            """
            size(X, Y, N) :- agg<N = count()>(triple(X, Y, Z)).
            biggest(X, M) :- agg<M = max(N)>(size(X, Y, N)).
            """,
            {
                "triple": [
                    ("a", "p", 1),
                    ("a", "p", 2),
                    ("a", "p", 3),
                    ("a", "q", 1),
                    ("b", "r", 9),
                ]
            },
        )
        assert e.query("biggest") == {("a", 3), ("b", 1)}

    def test_negative_values(self):
        e = run(
            "lo(X, M) :- agg<M = min(W)>(edge(X, W)).",
            {"edge": [("a", -5), ("a", 3)]},
        )
        assert e.query("lo") == {("a", -5)}


class TestHelpers:
    def test_helper_constructors(self):
        body = [Atom("edge", V.x, V.y, V.w)]
        for helper, kind in ((sum_, "sum"), (min_, "min"), (max_, "max")):
            rule = helper("out", [V.x], V.n, V.w, body)
            assert rule.kind == kind
            assert rule.value_var == V.w
        assert count("out", [V.x], V.n, body).kind == "count"

    def test_count_rejects_value_var(self):
        from repro.datalog.rules import AggregateRule

        with pytest.raises(RuleError, match="no value variable"):
            AggregateRule(
                "out", (V.x,), V.n, (Atom("e", V.x, V.w),), kind="count",
                value_var=V.w,
            )

    def test_value_kind_requires_value_var(self):
        from repro.datalog.rules import AggregateRule

        with pytest.raises(RuleError, match="needs a value variable"):
            AggregateRule("out", (V.x,), V.n, (Atom("e", V.x, V.w),), kind="max")

    def test_unbound_value_var_rejected(self):
        with pytest.raises(RuleError, match="value variable"):
            max_("out", [V.x], V.n, V.ghost, [Atom("e", V.x, V.w)])
