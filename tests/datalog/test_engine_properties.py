"""Property-based tests for the Datalog engine.

The semi-naive, index-joined engine is checked against independent oracles:

* transitive closure against ``networkx.transitive_closure``;
* reachability-with-negation against a direct set computation;
* count aggregation against a ``collections.Counter`` fold;
* relation index lookups against brute-force filtering.
"""

from collections import Counter

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Engine, parse_program
from repro.datalog.database import Relation

nodes = st.integers(min_value=0, max_value=12)
edges = st.lists(st.tuples(nodes, nodes), max_size=40)


@given(edges)
@settings(max_examples=60, deadline=None)
def test_transitive_closure_matches_networkx(edge_list):
    engine = Engine(
        parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            """
        )
    )
    engine.load({"edge": edge_list})
    engine.run()

    g = nx.DiGraph()
    g.add_nodes_from(range(13))
    g.add_edges_from(edge_list)
    expected = set(nx.transitive_closure(g).edges())
    assert engine.query("path") == expected


@given(edges, st.sets(nodes, max_size=3))
@settings(max_examples=60, deadline=None)
def test_negation_matches_set_oracle(edge_list, roots):
    engine = Engine(
        parse_program(
            """
            reach(X) :- root(X).
            reach(Y) :- reach(X), edge(X, Y).
            dead(X) :- node(X), !reach(X).
            """
        )
    )
    all_nodes = set(range(13))
    engine.load(
        {
            "edge": edge_list,
            "root": [(r,) for r in roots],
            "node": [(n,) for n in all_nodes],
        }
    )
    engine.run()

    reachable = set(roots)
    frontier = set(roots)
    succ = {}
    for a, b in edge_list:
        succ.setdefault(a, set()).add(b)
    while frontier:
        nxt = set()
        for n in frontier:
            nxt |= succ.get(n, set()) - reachable
        reachable |= nxt
        frontier = nxt
    assert engine.query("dead") == {(n,) for n in all_nodes - reachable}


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=40))
@settings(max_examples=60, deadline=None)
def test_count_matches_counter(pairs):
    engine = Engine(parse_program("deg(X, N) :- agg<N = count()>(edge(X, Y))."))
    engine.load({"edge": pairs})
    engine.run()
    expected_counts = Counter(a for a, _b in set(pairs))
    assert engine.query("deg") == {(a, n) for a, n in expected_counts.items()}


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
        max_size=30,
    ),
    st.sets(st.integers(0, 2), min_size=1, max_size=2).map(tuple).map(sorted).map(tuple),
    st.tuples(st.integers(0, 3), st.integers(0, 3)),
)
@settings(max_examples=80, deadline=None)
def test_relation_index_matches_bruteforce(rows, positions, key_source):
    rel = Relation("r")
    rel.add_many(rows)
    key = tuple(key_source[: len(positions)])
    if len(key) < len(positions):
        return
    got = sorted(rel.match(tuple(positions), key))
    expected = sorted(
        row
        for row in set(rows)
        if all(row[p] == k for p, k in zip(positions, key))
    )
    assert got == expected
