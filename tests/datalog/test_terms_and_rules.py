"""Unit tests for Datalog terms and rule objects (construction-level)."""

import pytest

from repro.datalog import (
    Atom,
    FilterAtom,
    FunAtom,
    NegAtom,
    Rule,
    RuleError,
    RuleProgram,
    V,
    Var,
)


class TestTerms:
    def test_var_factory_shorthand(self):
        assert V.x == Var("x")
        assert V("ctx") == Var("ctx")

    def test_wildcard(self):
        assert V("_").is_wildcard
        assert not V.x.is_wildcard

    def test_atom_variables_exclude_wildcards_and_constants(self):
        atom = Atom("p", V.x, "const", V("_"), V.y)
        assert atom.variables() == [V.x, V.y]

    def test_atom_repr(self):
        assert repr(Atom("p", V.x, 1)) == "p(?x, 1)"
        assert repr(NegAtom(Atom("p", V.x))) == "!p(?x)"

    def test_fun_atom_takes_name_from_function(self):
        def record(h, c):
            return ()

        fa = FunAtom(record, ins=(V.h, V.c), out=V.hctx)
        assert fa.name == "record"
        assert "record(?h, ?c)" in repr(fa)

    def test_filter_atom_repr(self):
        fa = FilterAtom(lambda x: True, args=(V.x,), name="ok")
        assert repr(fa) == "ok(?x)"


class TestRuleObjects:
    def test_single_head_normalized_to_tuple(self):
        rule = Rule(Atom("p", V.x), [Atom("q", V.x)])
        assert rule.heads == (Atom("p", V.x),)

    def test_pred_queries(self):
        rule = Rule(
            [Atom("p", V.x), Atom("r", V.x)],
            [Atom("q", V.x), NegAtom(Atom("s", V.x))],
        )
        assert rule.head_preds() == {"p", "r"}
        assert rule.body_preds() == {"q", "s"}
        assert rule.negated_preds() == {"s"}

    def test_repr_round_shape(self):
        rule = Rule([Atom("p", V.x)], [Atom("q", V.x)])
        assert repr(rule) == "p(?x) <- q(?x)."

    def test_no_heads_rejected(self):
        with pytest.raises(RuleError, match="at least one head"):
            Rule([], [Atom("q", V.x)])

    def test_fun_output_counts_as_bound(self):
        fun = FunAtom(lambda x: x, ins=(V.x,), out=V.y)
        rule = Rule([Atom("p", V.y)], [Atom("q", V.x), fun])
        rule.validate()  # must not raise

    def test_filter_with_unbound_arg_rejected(self):
        guard = FilterAtom(lambda v: True, args=(V.ghost,))
        with pytest.raises(RuleError, match="unbound filter args"):
            Rule([Atom("p", V.x)], [Atom("q", V.x), guard]).validate()


class TestRuleProgram:
    def test_idb_computed_from_heads(self):
        prog = RuleProgram(
            [Rule([Atom("p", V.x)], [Atom("e", V.x)])], edb=["e"]
        )
        assert prog.idb == {"p"}
        assert prog.all_preds() == {"p", "e"}

    def test_dependency_edges_flag_negation(self):
        prog = RuleProgram(
            [
                Rule([Atom("p", V.x)], [Atom("e", V.x)]),
                Rule([Atom("q", V.x)], [Atom("e", V.x), NegAtom(Atom("p", V.x))]),
            ],
            edb=["e"],
        )
        edges = set(prog.dependency_edges())
        assert ("p", "e", False) in edges
        assert ("q", "p", True) in edges
