"""Tests for relations and the fact database."""

from repro.datalog.database import Database, Relation


class TestRelation:
    def test_add_and_contains(self):
        r = Relation("r")
        assert r.add((1, 2))
        assert not r.add((1, 2))  # duplicate
        assert (1, 2) in r
        assert len(r) == 1

    def test_index_built_lazily_and_maintained(self):
        r = Relation("r")
        r.add(("a", 1))
        index = r.index_for((0,))
        assert index == {("a",): [("a", 1)]}
        r.add(("a", 2))  # added after index exists: must be maintained
        assert sorted(r.match((0,), ("a",))) == [("a", 1), ("a", 2)]

    def test_match_multiple_positions(self):
        r = Relation("r")
        r.add_many([("a", 1, "x"), ("a", 2, "x"), ("b", 1, "x")])
        assert r.match((0, 1), ("a", 2)) == [("a", 2, "x")]

    def test_match_no_positions_returns_all(self):
        r = Relation("r")
        r.add_many([(1,), (2,)])
        assert sorted(r.match((), ())) == [(1,), (2,)]

    def test_match_miss(self):
        r = Relation("r")
        r.add(("a",))
        assert r.match((0,), ("zz",)) == []

    def test_add_many_returns_new_count(self):
        r = Relation("r")
        assert r.add_many([(1,), (2,), (1,)]) == 2


class TestDatabase:
    def test_add_fact_tracks_delta(self):
        db = Database()
        db.add_fact("p", (1,))
        assert db.peek_delta("p") == {(1,)}
        assert db.take_delta("p") == {(1,)}
        assert db.take_delta("p") == set()

    def test_duplicate_not_in_delta(self):
        db = Database()
        db.add_fact("p", (1,))
        db.take_delta("p")
        db.add_fact("p", (1,))
        assert db.peek_delta("p") == set()

    def test_load_and_rows(self):
        db = Database()
        db.load({"p": [(1,), (2,)], "q": [("a", "b")]})
        assert db.rows("p") == {(1,), (2,)}
        assert db.count("q") == 1
        assert db.total_rows() == 3

    def test_missing_relation_queries(self):
        db = Database()
        assert db.rows("ghost") == set()
        assert db.count("ghost") == 0

    def test_has_delta(self):
        db = Database()
        db.add_fact("p", (1,))
        assert db.has_delta(["p", "q"])
        db.take_delta("p")
        assert not db.has_delta(["p", "q"])
