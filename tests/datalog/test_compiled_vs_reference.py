"""Differential tests: compiled-plan engine vs the frozen interpreter.

The compiled engine (:mod:`repro.datalog.engine`) replaced the
dict-environment interpreter now frozen as
:mod:`repro.datalog.reference_engine`.  The rewrite is a representation
change, not a semantic one: on any program both evaluators must produce
identical relations.  These tests drive that equivalence over randomized
fact sets on a zoo of rule programs covering every literal kind the
engine supports — recursion (including non-leading recursive atoms, the
delta-plan case), negation, constructor functions, filters, multi-head
rules, and count/max aggregation — plus a regression pinning the
semi-naive round counter and the O(1) row counter.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    Atom,
    Engine,
    FilterAtom,
    FunAtom,
    NegAtom,
    ReferenceEngine,
    Rule,
    RuleProgram,
    V,
    count,
    max_,
    parse_program,
)

nodes = st.integers(min_value=0, max_value=8)
edges = st.lists(st.tuples(nodes, nodes), max_size=30)


def _mkpair(x, y):
    return (x, y)


def _lt(x, y):
    return x < y


def _tc_program() -> RuleProgram:
    return RuleProgram(
        [
            Rule([Atom("path", V.x, V.y)], [Atom("edge", V.x, V.y)]),
            Rule(
                [Atom("path", V.x, V.z)],
                [Atom("edge", V.x, V.y), Atom("path", V.y, V.z)],
            ),
        ],
        edb=["edge"],
    )


def _same_generation_program() -> RuleProgram:
    # The recursive atom sits in the *middle* of a three-atom body, so
    # the delta variant for position 1 must reorder around it.
    return RuleProgram(
        [
            Rule(
                [Atom("sg", V.x, V.y)],
                [Atom("edge", V.p, V.x), Atom("edge", V.p, V.y)],
            ),
            Rule(
                [Atom("sg", V.x, V.y)],
                [
                    Atom("edge", V.p, V.x),
                    Atom("sg", V.p, V.q),
                    Atom("edge", V.q, V.y),
                ],
            ),
        ],
        edb=["edge"],
    )


def _negation_program() -> RuleProgram:
    return RuleProgram(
        [
            Rule([Atom("node", V.x)], [Atom("edge", V.x, V.y)]),
            Rule([Atom("node", V.y)], [Atom("edge", V.x, V.y)]),
            Rule([Atom("path", V.x, V.y)], [Atom("edge", V.x, V.y)]),
            Rule(
                [Atom("path", V.x, V.z)],
                [Atom("path", V.x, V.y), Atom("edge", V.y, V.z)],
            ),
            Rule(
                [Atom("acyclic", V.x)],
                [Atom("node", V.x), NegAtom(Atom("path", V.x, V.x))],
            ),
            Rule(
                [Atom("unreached", V.x, V.y)],
                [
                    Atom("node", V.x),
                    Atom("node", V.y),
                    NegAtom(Atom("path", V.x, V.y)),
                ],
            ),
        ],
        edb=["edge"],
    )


def _fun_filter_program() -> RuleProgram:
    return RuleProgram(
        [
            Rule(
                [Atom("pair", V.p)],
                [
                    Atom("edge", V.x, V.y),
                    FunAtom(_mkpair, (V.x, V.y), V.p, name="mkpair"),
                ],
            ),
            Rule(
                [Atom("up", V.x, V.y)],
                [
                    Atom("edge", V.x, V.y),
                    FilterAtom(_lt, (V.x, V.y), name="lt"),
                ],
            ),
            # Recursion through a constructor: walks build nested pairs.
            Rule(
                [Atom("walk", V.y, V.p)],
                [
                    Atom("edge", V.x, V.y),
                    FilterAtom(_lt, (V.x, V.y), name="lt"),
                    FunAtom(_mkpair, (V.x, V.y), V.p, name="mkpair"),
                ],
            ),
            Rule(
                [Atom("walk", V.z, V.q)],
                [
                    Atom("walk", V.y, V.p),
                    Atom("edge", V.y, V.z),
                    FilterAtom(_lt, (V.y, V.z), name="lt"),
                    FunAtom(_mkpair, (V.p, V.z), V.q, name="mkpair"),
                ],
            ),
        ],
        edb=["edge"],
    )


def _multihead_program() -> RuleProgram:
    return RuleProgram(
        [
            Rule(
                [Atom("src", V.x), Atom("dst", V.y), Atom("link", V.y, V.x)],
                [Atom("edge", V.x, V.y)],
            ),
            Rule(
                [Atom("mutual", V.x, V.y)],
                [Atom("link", V.x, V.y), Atom("link", V.y, V.x)],
            ),
        ],
        edb=["edge"],
    )


def _aggregate_program() -> RuleProgram:
    return RuleProgram(
        [
            Rule([Atom("path", V.x, V.y)], [Atom("edge", V.x, V.y)]),
            Rule(
                [Atom("path", V.x, V.z)],
                [Atom("edge", V.x, V.y), Atom("path", V.y, V.z)],
            ),
        ],
        aggregates=[
            count("outdeg", [V.x], V.n, [Atom("path", V.x, V.y)]),
            max_("maxdeg", [], V.m, V.n, [Atom("outdeg", V.x, V.n)]),
        ],
        edb=["edge"],
    )


_PROGRAMS = {
    "tc": _tc_program,
    "same-generation": _same_generation_program,
    "negation": _negation_program,
    "fun-filter": _fun_filter_program,
    "multihead": _multihead_program,
    "aggregates": _aggregate_program,
}


def _run_both(make_program, facts):
    """Run both engines on identical rules and facts; assert that every
    relation (EDB and IDB) comes out identical.  Returns the compiled
    engine for follow-on assertions."""
    engines = []
    for factory in (Engine, ReferenceEngine):
        engine = factory(make_program())
        engine.load(facts)
        engine.run()
        engines.append(engine)
    compiled, reference = engines
    names = set(compiled.db.names()) | set(reference.db.names())
    for name in sorted(names):
        assert compiled.db.rows(name) == reference.db.rows(name), name
    return compiled


@given(edges)
@settings(max_examples=40, deadline=None)
def test_transitive_closure_agrees(edge_list):
    _run_both(_tc_program, {"edge": edge_list})


@given(edges)
@settings(max_examples=40, deadline=None)
def test_same_generation_agrees(edge_list):
    _run_both(_same_generation_program, {"edge": edge_list})


@given(edges)
@settings(max_examples=40, deadline=None)
def test_stratified_negation_agrees(edge_list):
    _run_both(_negation_program, {"edge": edge_list})


@given(edges)
@settings(max_examples=40, deadline=None)
def test_fun_and_filter_atoms_agree(edge_list):
    _run_both(_fun_filter_program, {"edge": edge_list})


@given(edges)
@settings(max_examples=40, deadline=None)
def test_multihead_rules_agree(edge_list):
    _run_both(_multihead_program, {"edge": edge_list})


@given(edges)
@settings(max_examples=40, deadline=None)
def test_aggregates_agree(edge_list):
    _run_both(_aggregate_program, {"edge": edge_list})


@given(st.sampled_from(sorted(_PROGRAMS)), edges, edges)
@settings(max_examples=60, deadline=None)
def test_incremental_load_agrees(program_name, first, second):
    """Loading facts in two batches (forcing extra semi-naive rounds and
    index maintenance on already-built indexes) changes nothing."""
    make_program = _PROGRAMS[program_name]
    engines = []
    for factory in (Engine, ReferenceEngine):
        engine = factory(make_program())
        engine.load({"edge": first})
        engine.run()
        engine.load({"edge": second})
        engine.run()
        engines.append(engine)
    compiled, reference = engines
    names = set(compiled.db.names()) | set(reference.db.names())
    for name in sorted(names):
        assert compiled.db.rows(name) == reference.db.rows(name), name


class TestDeltaPlans:
    """Semi-naive delta variants: one plan per recursive body position."""

    def test_middle_position_recursion_converges(self):
        # A 0 -> 1 -> ... -> 5 chain: same-generation pairs are exactly
        # the diagonal, reached only through the delta plan whose
        # recursive atom is the middle literal.
        chain = [(i, i + 1) for i in range(5)]
        engine = _run_both(_same_generation_program, {"edge": chain})
        assert engine.query("sg") == {(i, i) for i in range(1, 6)}

    def test_rounds_counter_pins_semi_naive_convergence(self):
        # Length-6 chain: the naive pass runs the base rule and then the
        # recursive rule over its fresh output, so it already derives the
        # 2-step paths; delta rounds 1-4 add the 3..6-step paths and
        # round 5 closes empty.  A plan change that re-derives facts or
        # converges late moves this number.
        chain = [(i, i + 1) for i in range(6)]
        engine = Engine(_tc_program())
        engine.load({"edge": chain})
        engine.run()
        assert engine.query("path") == {
            (i, j) for i in range(7) for j in range(i + 1, 7)
        }
        assert engine.rounds == 5

    def test_rerun_without_new_facts_adds_no_rounds_or_rows(self):
        engine = Engine(_tc_program())
        engine.load({"edge": [(0, 1), (1, 2)]})
        engine.run()
        rounds = engine.rounds
        rows = engine.db.total_rows()
        engine.run()
        assert engine.rounds == rounds
        assert engine.db.total_rows() == rows


class TestTotalRowsCounter:
    """The O(1) ``Database.total_rows`` counter vs the full recount."""

    @given(st.sampled_from(sorted(_PROGRAMS)), edges)
    @settings(max_examples=40, deadline=None)
    def test_counter_matches_recount_after_any_program(self, name, edge_list):
        engine = Engine(_PROGRAMS[name]())
        engine.load({"edge": edge_list})
        engine.run()
        assert engine.db.total_rows() == engine.db.recount_rows()

    def test_counter_ignores_duplicate_inserts(self):
        engine = Engine(parse_program("p(X, Y) :- e(X, Y)."))
        engine.load({"e": [(1, 2), (1, 2), (2, 3)]})
        engine.run()
        assert engine.db.total_rows() == engine.db.recount_rows() == 4
