"""Tests for the Datalog engine: recursion, negation, strata, builtins."""

import pytest

from repro.datalog import (
    Atom,
    Engine,
    EvaluationBudgetExceeded,
    FilterAtom,
    FunAtom,
    NegAtom,
    Rule,
    RuleError,
    RuleProgram,
    V,
    count,
    parse_program,
    stratify,
)


def run(text, facts, max_rows=None):
    engine = Engine(parse_program(text), max_rows=max_rows)
    engine.load(facts)
    engine.run()
    return engine


class TestBasicEvaluation:
    def test_copy_rule(self):
        e = run("out(X) :- inp(X).", {"inp": [(1,), (2,)]})
        assert e.query("out") == {(1,), (2,)}

    def test_join(self):
        e = run(
            "gp(X, Z) :- parent(X, Y), parent(Y, Z).",
            {"parent": [("a", "b"), ("b", "c"), ("b", "d")]},
        )
        assert e.query("gp") == {("a", "c"), ("a", "d")}

    def test_transitive_closure(self):
        e = run(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            """,
            {"edge": [(i, i + 1) for i in range(20)]},
        )
        assert len(e.query("path")) == 20 * 21 // 2

    def test_cyclic_graph_terminates(self):
        e = run(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """,
            {"edge": [("a", "b"), ("b", "a")]},
        )
        assert e.query("path") == {
            ("a", "b"),
            ("b", "a"),
            ("a", "a"),
            ("b", "b"),
        }

    def test_constants_in_body(self):
        e = run(
            "hit(X) :- edge(root, X).",
            {"edge": [("root", "a"), ("other", "b")]},
        )
        assert e.query("hit") == {("a",)}

    def test_constants_in_head(self):
        e = run("tag(fixed, X) :- inp(X).", {"inp": [(1,)]})
        assert e.query("tag") == {("fixed", 1)}

    def test_repeated_variable_in_atom(self):
        e = run("loop(X) :- edge(X, X).", {"edge": [("a", "a"), ("a", "b")]})
        assert e.query("loop") == {("a",)}

    def test_wildcards_do_not_join(self):
        e = run(
            "src(X) :- edge(X, _), edge(_, X).",
            {"edge": [("a", "b"), ("b", "c")]},
        )
        assert e.query("src") == {("b",)}

    def test_mutual_recursion(self):
        e = run(
            """
            even(X) :- zero(X).
            even(Y) :- odd(X), succ(X, Y).
            odd(Y) :- even(X), succ(X, Y).
            """,
            {"zero": [(0,)], "succ": [(i, i + 1) for i in range(6)]},
        )
        assert e.query("even") == {(0,), (2,), (4,), (6,)}
        assert e.query("odd") == {(1,), (3,), (5,)}

    def test_empty_edb(self):
        e = run("out(X) :- inp(X).", {})
        assert e.query("out") == set()


class TestNegation:
    def test_stratified_negation(self):
        e = run(
            """
            reach(X) :- root(X).
            reach(Y) :- reach(X), edge(X, Y).
            dead(X) :- node(X), !reach(X).
            """,
            {
                "root": [("a",)],
                "edge": [("a", "b")],
                "node": [("a",), ("b",), ("c",)],
            },
        )
        assert e.query("dead") == {("c",)}

    def test_negation_in_cycle_rejected(self):
        with pytest.raises(RuleError, match="not stratifiable"):
            Engine(
                parse_program(
                    """
                    p(X) :- inp(X), !q(X).
                    q(X) :- inp(X), !p(X).
                    """
                )
            )

    def test_unsafe_negation_rejected(self):
        with pytest.raises(RuleError, match="unsafe negation"):
            parse_program("p(X) :- inp(X), !q(Y).")

    def test_negation_on_edb(self):
        e = run(
            "only(X) :- a(X), !b(X).",
            {"a": [(1,), (2,)], "b": [(2,)]},
        )
        assert e.query("only") == {(1,)}


class TestStratification:
    def test_strata_ordering(self):
        program = parse_program(
            """
            p(X) :- e(X).
            q(X) :- p(X).
            r(X) :- q(X), !p(X).
            """
        )
        strata = stratify(program)
        assert strata["e"] < strata["p"] <= strata["q"] < strata["r"]

    def test_scc_shares_stratum(self):
        program = parse_program(
            """
            p(X) :- e(X).
            p(X) :- q(X).
            q(X) :- p(X).
            """
        )
        strata = stratify(program)
        assert strata["p"] == strata["q"]

    def test_multihead_spanning_strata_rejected(self):
        # head h2 is negated by a rule above, so it must be in a lower
        # stratum than h1 which depends on that rule's output -> conflict.
        rules = [
            Rule([Atom("h2", V.x)], [Atom("e", V.x)]),
            Rule([Atom("mid", V.x)], [Atom("e", V.x), NegAtom(Atom("h2", V.x))]),
            Rule([Atom("h1", V.x), Atom("h2", V.x)], [Atom("mid", V.x)]),
        ]
        with pytest.raises(RuleError):
            Engine(RuleProgram(rules, edb=["e"]))


class TestBuiltins:
    def test_function_atom_binds_output(self):
        double = FunAtom(lambda x: x * 2, ins=(V.x,), out=V.y, name="double")
        program = RuleProgram(
            [Rule([Atom("out", V.x, V.y)], [Atom("inp", V.x), double])],
            edb=["inp"],
        )
        e = Engine(program)
        e.load({"inp": [(1,), (3,)]})
        e.run()
        assert e.query("out") == {(1, 2), (3, 6)}

    def test_function_atom_joins_when_output_bound(self):
        double = FunAtom(lambda x: x * 2, ins=(V.x,), out=V.y, name="double")
        program = RuleProgram(
            [
                Rule(
                    [Atom("ok", V.x)],
                    [Atom("pair", V.x, V.y), double],
                )
            ],
            edb=["pair"],
        )
        e = Engine(program)
        e.load({"pair": [(1, 2), (1, 3)]})
        e.run()
        assert e.query("ok") == {(1,)}

    def test_unbound_function_input_rejected(self):
        double = FunAtom(lambda x: x * 2, ins=(V.z,), out=V.y)
        with pytest.raises(RuleError, match="unbound function inputs"):
            RuleProgram(
                [Rule([Atom("out", V.y)], [Atom("inp", V.x), double])],
                edb=["inp"],
            )

    def test_filter_atom(self):
        positive = FilterAtom(lambda x: x > 0, args=(V.x,), name="positive")
        program = RuleProgram(
            [Rule([Atom("pos", V.x)], [Atom("inp", V.x), positive])],
            edb=["inp"],
        )
        e = Engine(program)
        e.load({"inp": [(-1,), (0,), (5,)]})
        e.run()
        assert e.query("pos") == {(5,)}


class TestAggregates:
    def test_count_groups(self):
        e = run(
            "deg(X, N) :- agg<N = count()>(edge(X, Y)).",
            {"edge": [("a", 1), ("a", 2), ("b", 1)]},
        )
        assert e.query("deg") == {("a", 2), ("b", 1)}

    def test_count_over_derived_relation(self):
        e = run(
            """
            pair(X, Y) :- e1(X, Y).
            pair(X, Y) :- e2(X, Y).
            n(X, N) :- agg<N = count()>(pair(X, Y)).
            """,
            {"e1": [("a", 1), ("a", 2)], "e2": [("a", 2), ("a", 3)]},
        )
        assert e.query("n") == {("a", 3)}  # distinct tuples, not sum

    def test_count_with_join_body(self):
        program = RuleProgram(
            [],
            aggregates=[
                count(
                    "m",
                    [V.x],
                    V.n,
                    [Atom("edge", V.x, V.y), Atom("mark", V.y)],
                )
            ],
            edb=["edge", "mark"],
        )
        e = Engine(program)
        e.load({"edge": [("a", 1), ("a", 2), ("a", 3)], "mark": [(1,), (3,)]})
        e.run()
        assert e.query("m") == {("a", 2)}

    def test_aggregate_over_aggregate_strata(self):
        e = run(
            """
            deg(X, N) :- agg<N = count()>(edge(X, Y)).
            byn(N, K) :- agg<K = count()>(deg(X, N)).
            """,
            {"edge": [("a", 1), ("a", 2), ("b", 1), ("c", 2)]},
        )
        assert e.query("byn") == {(2, 1), (1, 2)}

    def test_wildcard_in_aggregate_rejected(self):
        with pytest.raises(RuleError, match="wildcard"):
            parse_program("n(X, N) :- agg<N = count()>(edge(X, _)).")


class TestBudget:
    def test_budget_exceeded(self):
        with pytest.raises(EvaluationBudgetExceeded):
            run(
                """
                path(X, Y) :- edge(X, Y).
                path(X, Z) :- edge(X, Y), path(Y, Z).
                """,
                {"edge": [(i, i + 1) for i in range(100)]},
                max_rows=50,
            )


class TestRuleValidation:
    def test_unsafe_head_rejected(self):
        with pytest.raises(RuleError, match="unsafe head"):
            parse_program("p(X, Y) :- inp(X).")

    def test_empty_body_rejected(self):
        with pytest.raises(RuleError, match="non-empty body"):
            Rule([Atom("p", V.x)], [])

    def test_wildcard_in_head_rejected(self):
        with pytest.raises(RuleError, match="wildcard"):
            Rule([Atom("p", V("_"))], [Atom("q", V.x)]).validate()

    def test_edb_idb_overlap_rejected(self):
        with pytest.raises(RuleError, match="both EDB and IDB"):
            RuleProgram(
                [Rule([Atom("p", V.x)], [Atom("q", V.x)])], edb=["p", "q"]
            )
