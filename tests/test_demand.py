"""Tests for the demand-driven points-to baseline.

The headline property: on catch-free programs, a demand query returns
*exactly* the whole-program context-insensitive points-to set of the
queried variable — checked on the fixture programs and property-based over
random programs — while visiting only the variable's backward slice.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ProgramBuilder, analyze, encode_program
from repro.baselines.demand import DemandPointsTo
from tests.conftest import (
    build_box_program,
    build_kitchen_sink_program,
    build_tiny_program,
)


def make_engine(program):
    facts = encode_program(program)
    insens = analyze(program, "insens", facts=facts)
    return facts, insens, DemandPointsTo.from_insensitive_result(
        program, facts, insens
    )


@pytest.mark.parametrize(
    "builder",
    [build_tiny_program, build_box_program, build_kitchen_sink_program],
    ids=["tiny", "boxes", "kitchen-sink"],
)
def test_demand_equals_whole_program(builder):
    program = builder()
    facts, insens, engine = make_engine(program)
    for var, expected in insens.var_points_to.items():
        answer = engine.query(var)
        assert answer.points_to == frozenset(expected), var
    # and vars with empty points-to stay empty
    for var, meth in facts.varinmeth:
        if meth in insens.reachable_methods and var not in insens.var_points_to:
            assert engine.query(var).points_to == frozenset(), var


def test_footprint_is_a_slice():
    """Querying one box's content must not visit unrelated pattern code."""
    from repro.benchgen import BenchmarkSpec, HubSpec, generate

    spec = BenchmarkSpec(
        name="slice",
        util_classes=10,
        util_methods_per_class=6,
        strategy_clusters=(4,),
        box_groups=(4,),
        sink_groups=(),
        hubs=(HubSpec(readers=10, elements=10, chain=4),),
    )
    program = generate(spec)
    facts, insens, engine = make_engine(program)
    total_vars = len(facts.varinmeth)
    answer = engine.query("BoxDriver0.drive/0/g0")
    assert answer.points_to == frozenset(
        insens.var_points_to["BoxDriver0.drive/0/g0"]
    )
    assert answer.visited_variables < total_vars / 5


def test_dispatch_filter_matches_solver():
    """`this` only receives receivers that actually dispatch to the method."""
    b = ProgramBuilder()
    b.klass("A")
    b.klass("B")
    for cls in ("A", "B"):
        with b.method(cls, "me", []) as m:
            m.ret("this")
    with b.method("Main", "main", [], static=True) as m:
        m.alloc("a", "A")
        m.alloc("bb", "B")
        m.move("x", "a")
        m.move("x", "bb")
        m.vcall("x", "me", [], target="r")
    program = b.build(entry="Main.main/0")
    _facts, insens, engine = make_engine(program)
    assert engine.query("A.me/0/this").points_to == frozenset(
        {"Main.main/0/new A/0"}
    )
    assert engine.query("A.me/0/this").points_to == frozenset(
        insens.var_points_to["A.me/0/this"]
    )


def test_catch_query_over_approximates():
    b = ProgramBuilder()
    b.klass("Exc")
    with b.method("Lib", "boom", [], static=True) as m:
        m.alloc("e", "Exc")
        m.throw("e")
    with b.method("Main", "main", [], static=True) as m:
        m.scall("Lib", "boom", [])
        m.catch("h", "Exc")
    program = b.build(entry="Main.main/0")
    _facts, insens, engine = make_engine(program)
    demand = engine.query("Main.main/0/h").points_to
    assert demand >= frozenset(insens.var_points_to["Main.main/0/h"])


def test_exception_slop_attributes_the_catch_over_approximation():
    """`exception_slop` counts exactly the heaps the every-throw catch
    edge added — here a heap the real analysis intercepts mid-chain —
    so query-vs-exhaustive deltas stay attributable."""
    b = ProgramBuilder()
    b.klass("Exc")
    with b.method("Lib", "boom", [], static=True) as m:
        m.alloc("e", "Exc")
        m.throw("e")
    with b.method("Lib", "mid", [], static=True) as m:
        m.scall("Lib", "boom", [])
        m.catch("g", "Exc")  # intercepts: nothing escapes to Main
    with b.method("Main", "main", [], static=True) as m:
        m.scall("Lib", "mid", [])
        m.catch("h", "Exc")
    program = b.build(entry="Main.main/0")
    _facts, insens, engine = make_engine(program)
    answer = engine.query("Main.main/0/h")
    whole = frozenset(insens.var_points_to.get("Main.main/0/h", ()))
    # The baseline ignores interception, so the boom heap leaks into h —
    # and the slop counter owns up to exactly that excess.
    assert answer.points_to > whole
    assert answer.exception_slop == len(answer.points_to - whole)


def test_exception_slop_is_zero_without_catch_edges():
    for builder in (build_tiny_program, build_box_program):
        program = builder()
        _facts, insens, engine = make_engine(program)
        for var in insens.var_points_to:
            assert engine.query(var).exception_slop == 0, var


# Property-based: reuse the random-program strategy.  The catch-handler
# over-approximation (see the demand module docstring) propagates to every
# variable downstream of a handler, so exactness is asserted only on
# catch-free programs; with handlers present the demand answer must still
# be a superset of the whole-program result (soundness direction).
from tests.analysis.test_properties import programs  # noqa: E402


@given(programs())
@settings(max_examples=40, deadline=None)
def test_demand_matches_insensitive_on_random_programs(program):
    facts = encode_program(program)
    insens = analyze(program, "insens", facts=facts)
    engine = DemandPointsTo.from_insensitive_result(program, facts, insens)
    exact = not facts.catchclause
    for var, expected in insens.var_points_to.items():
        answer = engine.query(var).points_to
        if exact:
            assert answer == frozenset(expected), var
        else:
            assert answer >= frozenset(expected), var
