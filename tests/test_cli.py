"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
class Exc { }
class Box {
    field v;
    method set(x) { this.v = x; }
    method get()  { r = this.v; return r; }
}
class Main {
    static method main() {
        b = new Box();
        i = new Exc();
        b.set(i);
        g = b.get();
        c = (Exc) g;
        throw i;
    }
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "demo.mj"
    path.write_text(SOURCE)
    return str(path)


class TestAnalyze:
    def test_basic_run(self, source_file, capsys):
        assert main(["analyze", source_file, "--analysis", "insens"]) == 0
        out = capsys.readouterr().out
        assert "program:" in out and "stats:" in out

    def test_show_points_to(self, source_file, capsys):
        main(["analyze", source_file, "--show", "Main.main/0/g"])
        out = capsys.readouterr().out
        assert "pts(Main.main/0/g) = ['Main.main/0/new Exc/1']" in out

    def test_show_missing_var_prints_empty(self, source_file, capsys):
        main(["analyze", source_file, "--show", "Main.main/0/nope"])
        assert "pts(Main.main/0/nope) = {}" in capsys.readouterr().out

    def test_reports(self, source_file, capsys):
        main(
            [
                "analyze",
                source_file,
                "--precision",
                "--devirt",
                "--exceptions",
            ]
        )
        out = capsys.readouterr().out
        assert "precision:" in out
        assert "devirtualization:" in out
        assert "exceptions: escaping 1" in out

    def test_dump(self, source_file, capsys):
        main(["analyze", source_file, "--dump", "--analysis", "insens"])
        assert "g = b.get/0()" in capsys.readouterr().out

    def test_introspective(self, source_file, capsys):
        assert (
            main(["analyze", source_file, "--introspective", "A"]) == 0
        )
        out = capsys.readouterr().out
        assert "2objH-IntroA" in out and "not refined" in out

    def test_heuristic_constants_override(self, source_file, capsys):
        main(
            [
                "analyze",
                source_file,
                "--introspective",
                "B",
                "--heuristic-constants",
                "5,7",
            ]
        )
        assert "P=5, Q=7" in capsys.readouterr().out

    def test_budget_timeout_exit_code(self, source_file, capsys):
        assert main(["analyze", source_file, "--budget", "2"]) == 3
        assert "TIMEOUT" in capsys.readouterr().out

    def test_missing_file_exits_2_with_one_line_error(self, capsys):
        assert main(["analyze", "/no/such/file.mj"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read /no/such/file.mj")
        assert len(err.strip().splitlines()) == 1

    def test_directory_as_file_exits_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 2
        assert "error: cannot read" in capsys.readouterr().err


class TestHeuristicConstantsValidation:
    def test_wrong_arity_for_a(self, source_file, capsys):
        rc = main(
            [
                "analyze",
                source_file,
                "--introspective",
                "A",
                "--heuristic-constants",
                "1,2",
            ]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "--heuristic-constants" in err
        assert "K,L,M" in err

    def test_non_integer_constants_for_b(self, source_file, capsys):
        rc = main(
            [
                "analyze",
                source_file,
                "--introspective",
                "B",
                "--heuristic-constants",
                "x,y",
            ]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "integers" in err and "P,Q" in err

    def test_valid_constants_still_work(self, source_file, capsys):
        rc = main(
            [
                "analyze",
                source_file,
                "--introspective",
                "A",
                "--heuristic-constants",
                " 4 , 5 , 6 ",
            ]
        )
        assert rc == 0
        assert "K=4, L=5, M=6" in capsys.readouterr().out


class TestSaveFlags:
    def test_save_facts_and_solution(self, source_file, capsys, tmp_path):
        facts_dir = tmp_path / "facts"
        sol_dir = tmp_path / "solution"
        rc = main(
            [
                "analyze",
                source_file,
                "--analysis",
                "insens",
                "--save-facts",
                str(facts_dir),
                "--save-solution",
                str(sol_dir),
            ]
        )
        assert rc == 0
        assert (facts_dir / "ALLOC.facts").exists()
        assert (sol_dir / "VARPOINTSTO.csv").exists()
        out = capsys.readouterr().out
        assert ".facts files" in out and "relation files" in out


class TestBenchSuite:
    """``repro bench`` with no benchmark name runs the engine comparison."""

    def test_tiny_suite_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_solver.json"
        rc = main(
            [
                "bench",
                "--suite",
                "tiny",
                "--repeat",
                "1",
                "--output",
                str(out_path),
            ]
        )
        assert rc == 0
        assert "geomean" in capsys.readouterr().out
        import json

        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro-bench-solver/1"
        assert report["suite"] == "tiny"
        assert report["entries"]

    def test_flavor_subset(self, tmp_path, capsys):
        out_path = tmp_path / "b.json"
        rc = main(
            [
                "bench",
                "--suite",
                "tiny",
                "--repeat",
                "1",
                "--flavors",
                "2objH",
                "--output",
                str(out_path),
            ]
        )
        assert rc == 0
        import json

        assert json.loads(out_path.read_text())["flavors"] == ["2objH"]

    def test_unknown_suite_is_an_error(self, tmp_path, capsys):
        rc = main(
            ["bench", "--suite", "nope", "--output", str(tmp_path / "x.json")]
        )
        assert rc == 2
        assert "unknown suite" in capsys.readouterr().out


class TestBench:
    def test_known_benchmark(self, capsys):
        assert main(["bench", "antlr", "--analysis", "insens"]) == 0
        out = capsys.readouterr().out
        assert "spec: antlr" in out and "stats:" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["bench", "nope"]) == 2
        assert "unknown benchmark" in capsys.readouterr().out

    def test_introspective_timeout_exit_code(self, capsys):
        rc = main(
            [
                "bench",
                "hsqldb",
                "--analysis",
                "2objH",
                "--budget",
                "150000",
            ]
        )
        assert rc == 3

    def test_introspective_rescues(self, capsys):
        rc = main(
            [
                "bench",
                "hsqldb",
                "--analysis",
                "2objH",
                "--introspective",
                "B",
                "--heuristic-constants",
                "150,250",
                "--budget",
                "150000",
            ]
        )
        assert rc == 0


class TestList:
    def test_benchmarks_listed(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("antlr", "jython", "hsqldb"):
            assert name in out


class TestTrace:
    def test_analyze_trace_writes_chrome_json(self, source_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "out.json"
        rc = main(
            ["analyze", source_file, "--analysis", "2objH",
             "--trace", str(trace_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote trace" in out
        assert "span" in out  # the summary table header
        trace = json.loads(trace_path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        # The whole pipeline is covered: frontend, facts, solver, clients.
        assert len(names) >= 6
        assert {"frontend.parse", "facts.encode", "solver.propagate",
                "clients.precision"} <= names

    def test_analyze_trace_default_filename(self, source_file, tmp_path,
                                            capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["analyze", source_file, "--trace"])
        assert rc == 0
        assert (tmp_path / "TRACE.json").exists()

    def test_untraced_run_writes_nothing(self, source_file, tmp_path,
                                         capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["analyze", source_file])
        assert rc == 0
        assert not (tmp_path / "TRACE.json").exists()
        assert "wrote trace" not in capsys.readouterr().out

    def test_bench_suite_trace_cell(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_solver.json"
        trace_path = tmp_path / "trace.json"
        rc = main(
            ["bench", "--suite", "tiny", "--repeat", "1",
             "--flavors", "2objH", "--output", str(out_path),
             "--trace", str(trace_path)]
        )
        assert rc == 0
        report = json.loads(out_path.read_text())
        cell = report["trace"]
        assert cell["benchmark"] == "micro"
        assert cell["flavor"] == "2objH"
        assert cell["untraced_cpu_seconds"] > 0
        assert cell["traced_cpu_seconds"] > 0
        assert isinstance(cell["overhead_percent"], float)
        assert "solver.propagate" in cell["span_names"]
        assert cell["events"] > 0
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]

    def test_bench_suite_without_trace_keeps_schema(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "b.json"
        rc = main(
            ["bench", "--suite", "tiny", "--repeat", "1",
             "--flavors", "2objH", "--output", str(out_path)]
        )
        assert rc == 0
        assert "trace" not in json.loads(out_path.read_text())


class TestQuery:
    """``repro query``: the demand engine's command-line surface."""

    def test_single_variable_text_output(self, source_file, capsys):
        rc = main(
            ["query", "Main.main/0/g", "--source", source_file,
             "--flavor", "2objH"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pts(Main.main/0/g) = ['Main.main/0/new Exc/1']" in out
        assert "slice:" in out and "of program" in out

    def test_json_output_carries_answer_schema(self, source_file, capsys):
        import json

        rc = main(
            ["query", "Main.main/0/g", "--source", source_file, "--json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"facts_digest", "flavor", "answers"}
        (answer,) = doc["answers"]
        assert answer["var"] == "Main.main/0/g"
        assert answer["points_to"] == ["Main.main/0/new Exc/1"]

    def test_batch_file_with_comments(self, source_file, tmp_path, capsys):
        batch = tmp_path / "vars.txt"
        batch.write_text("# queried variables\nMain.main/0/g\n\nMain.main/0/c\n")
        rc = main(["query", "--batch", str(batch), "--source", source_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pts(Main.main/0/g)" in out and "pts(Main.main/0/c)" in out

    def test_requires_exactly_one_program_selector(self, source_file, capsys):
        assert main(["query", "Main.main/0/g"]) == 2
        assert (
            main(
                ["query", "Main.main/0/g", "--source", source_file,
                 "--benchmark", "antlr"]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "exactly one of --benchmark or --source" in err

    def test_requires_some_variable(self, source_file, capsys):
        assert main(["query", "--source", source_file]) == 2
        assert "no variables" in capsys.readouterr().err

    def test_unknown_flavor_is_an_error(self, source_file, capsys):
        rc = main(
            ["query", "Main.main/0/g", "--source", source_file,
             "--flavor", "introspective-Z"]
        )
        assert rc == 2
        assert "introspective" in capsys.readouterr().err

    def test_blown_budget_exits_3(self, source_file, capsys):
        rc = main(
            ["query", "Main.main/0/g", "--source", source_file,
             "--flavor", "2objH", "--max-tuples", "1"]
        )
        assert rc == 3
        assert "TIMEOUT" in capsys.readouterr().out

    def test_benchmark_selector(self, capsys):
        rc = main(
            ["query", "U0.m0/1/g", "--benchmark", "antlr",
             "--flavor", "insens"]
        )
        assert rc == 0
        assert "pts(U0.m0/1/g)" in capsys.readouterr().out


class TestBenchDemand:
    def test_tiny_demand_suite_writes_report(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_demand.json"
        rc = main(
            ["bench", "--demand", "--suite", "tiny", "--repeat", "1",
             "--queries", "2", "--flavors", "2objH",
             "--output", str(out_path)]
        )
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro-bench-demand/1"
        assert report["suite"] == "tiny"
        assert report["queries"] == 2
        assert report["entries"]
        assert report["geomean_speedup"] > 0
        assert 0.0 < report["median_footprint"] <= 1.0
        for key in report["speedups"]:
            assert key.rsplit("/", 1)[1] in ("query", "batch")

    def test_demand_default_flavors_include_introspective(self, tmp_path):
        """With no --flavors, the demand suite covers an introspective
        variant (the paper's pairing: demand queries x introspection)."""
        import json

        out_path = tmp_path / "d.json"
        rc = main(
            ["bench", "--demand", "--suite", "tiny", "--repeat", "1",
             "--queries", "1", "--output", str(out_path)]
        )
        assert rc == 0
        flavors = json.loads(out_path.read_text())["flavors"]
        assert "introspective-A" in flavors
