"""Tests for the ProgramBuilder fluent API."""

import pytest

from repro.ir import (
    Alloc,
    Cast,
    Load,
    Move,
    ProgramBuilder,
    ProgramError,
    Return,
    SpecialCall,
    StaticCall,
    StaticLoad,
    StaticStore,
    Store,
    ValidationError,
    VirtualCall,
)


class TestClassDeclaration:
    def test_explicit_class_with_fields(self):
        b = ProgramBuilder()
        b.klass("A", fields=["f", "g"], static_fields=["s"])
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("x", "A")
        p = b.build(entry="Main.main/0")
        assert p.classes["A"].fields == ("f", "g")
        assert p.classes["A"].static_fields == ("s",)

    def test_auto_class_on_method(self):
        b = ProgramBuilder()
        with b.method("Implicit", "main", [], static=True) as m:
            m.ret()
        p = b.build(entry="Implicit.main/0")
        assert "Implicit" in p.classes

    def test_interface_helper(self):
        b = ProgramBuilder()
        b.interface("I")
        with b.method("Main", "main", [], static=True) as m:
            m.ret()
        p = b.build(entry="Main.main/0")
        assert p.hierarchy["I"].is_interface

    def test_entry_required(self):
        b = ProgramBuilder()
        with b.method("Main", "main", [], static=True) as m:
            m.ret()
        with pytest.raises(ProgramError, match="entry point"):
            b.build()

    def test_multiple_entries(self):
        b = ProgramBuilder()
        with b.method("Main", "main", [], static=True) as m:
            m.ret()
        with b.method("Main", "alt", [], static=True) as m:
            m.ret()
        b.entry("Main.main/0")
        p = b.build(entry="Main.alt/0")
        assert p.entry_points == ["Main.main/0", "Main.alt/0"]


class TestInstructionEmission:
    def build_single(self, emit):
        b = ProgramBuilder()
        b.klass("A", fields=["f"], static_fields=["s"])
        with b.method("A", "helper", ["p"]) as m:
            m.ret("p")
        with b.method("A", "shelper", ["p"], static=True) as m:
            m.ret("p")
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("x", "A")
            m.alloc("y", "A")
            emit(m)
        p = b.build(entry="Main.main/0")
        return p.method("Main.main/0").instructions

    def test_alloc(self):
        instrs = self.build_single(lambda m: None)
        assert isinstance(instrs[0], Alloc)
        assert instrs[0].class_name == "A"

    def test_move(self):
        instrs = self.build_single(lambda m: m.move("z", "x"))
        assert instrs[-1] == Move("z", "x")

    def test_load_store(self):
        instrs = self.build_single(
            lambda m: m.store("x", "f", "y").load("z", "x", "f")
        )
        assert instrs[-2] == Store("x", "f", "y")
        assert instrs[-1] == Load("z", "x", "f")

    def test_static_load_store(self):
        instrs = self.build_single(
            lambda m: m.static_store("A", "s", "x").static_load("z", "A", "s")
        )
        assert instrs[-2] == StaticStore("A", "s", "x")
        assert instrs[-1] == StaticLoad("z", "A", "s")

    def test_cast(self):
        instrs = self.build_single(lambda m: m.cast("z", "x", "A"))
        assert instrs[-1] == Cast("z", "x", "A")

    def test_vcall_builds_signature(self):
        instrs = self.build_single(lambda m: m.vcall("x", "helper", ["y"], target="z"))
        call = instrs[-1]
        assert isinstance(call, VirtualCall)
        assert call.sig == "helper/1"
        assert call.base == "x"
        assert call.target == "z"
        assert call.invo  # assigned at freeze

    def test_scall(self):
        instrs = self.build_single(lambda m: m.scall("A", "shelper", ["y"]))
        call = instrs[-1]
        assert isinstance(call, StaticCall)
        assert call.class_name == "A"
        assert call.target is None

    def test_special_call(self):
        instrs = self.build_single(
            lambda m: m.special_call("x", "A", "helper", ["y"], target="z")
        )
        call = instrs[-1]
        assert isinstance(call, SpecialCall)
        assert call.base == "x"
        assert call.class_name == "A"

    def test_array_sugar(self):
        instrs = self.build_single(
            lambda m: m.array_store("x", "y").array_load("z", "x")
        )
        assert instrs[-2] == Store("x", "<arr>", "y")
        assert instrs[-1] == Load("z", "x", "<arr>")

    def test_ret(self):
        instrs = self.build_single(lambda m: m.ret("x"))
        assert instrs[-1] == Return("x")

    def test_bare_ret(self):
        instrs = self.build_single(lambda m: m.ret())
        assert instrs[-1] == Return(None)


class TestValidationIntegration:
    def test_build_validates_by_default(self):
        b = ProgramBuilder()
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("x", "Ghost")
        with pytest.raises(ValidationError):
            b.build(entry="Main.main/0")

    def test_validation_can_be_skipped(self):
        b = ProgramBuilder()
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("x", "Ghost")
        # The unknown alloc type is only caught by validate_program; with
        # validation off, building succeeds.
        p = b.build(entry="Main.main/0", validate=False)
        assert p.frozen

    def test_method_body_discarded_on_exception(self):
        b = ProgramBuilder()
        try:
            with b.method("Main", "broken", [], static=True) as m:
                m.alloc("x", "A")
                raise RuntimeError("abort body")
        except RuntimeError:
            pass
        with b.method("Main", "main", [], static=True) as m:
            m.ret()
        p = b.build(entry="Main.main/0")
        assert "broken/0" not in p.classes["Main"].methods
