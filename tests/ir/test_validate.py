"""Tests for IR validation: each rejection class."""

import pytest

from repro.ir import ProgramBuilder, ValidationError


def expect_invalid(build_body, match: str, setup=None):
    b = ProgramBuilder()
    if setup:
        setup(b)
    with b.method("Main", "main", [], static=True) as m:
        build_body(m)
    with pytest.raises(ValidationError, match=match):
        b.build(entry="Main.main/0")


def test_alloc_unknown_type():
    expect_invalid(lambda m: m.alloc("x", "Ghost"), "unknown type")


def test_alloc_interface():
    expect_invalid(
        lambda m: m.alloc("x", "I"),
        "non-concrete",
        setup=lambda b: b.interface("I"),
    )


def test_alloc_abstract_class():
    expect_invalid(
        lambda m: m.alloc("x", "A"),
        "non-concrete",
        setup=lambda b: b.klass("A", abstract=True),
    )


def test_cast_unknown_type():
    expect_invalid(
        lambda m: m.alloc("x", "java.lang.Object").cast("y", "x", "Ghost"),
        "unknown type",
    )


def test_static_call_unresolvable():
    expect_invalid(
        lambda m: m.scall("A", "ghost", []),
        "unresolvable",
        setup=lambda b: b.klass("A"),
    )


def test_static_call_to_instance_method():
    def setup(b):
        b.klass("A")
        with b.method("A", "run", []) as m:
            m.ret()

    expect_invalid(lambda m: m.scall("A", "run", []), "instance method", setup=setup)


def test_special_call_to_static_method():
    def setup(b):
        b.klass("A")
        with b.method("A", "run", [], static=True) as m:
            m.ret()

    expect_invalid(
        lambda m: m.alloc("x", "A").special_call("x", "A", "run", []),
        "static method",
        setup=setup,
    )


def test_static_field_on_unknown_class():
    expect_invalid(
        lambda m: m.alloc("x", "java.lang.Object").static_store("Ghost", "s", "x"),
        "unknown class",
    )


def test_unknown_static_field():
    expect_invalid(
        lambda m: m.alloc("x", "A").static_store("A", "ghost", "x"),
        "unknown static field",
        setup=lambda b: b.klass("A"),
    )


def test_undeclared_instance_field():
    expect_invalid(
        lambda m: m.alloc("x", "A").load("y", "x", "ghost"),
        "not declared",
        setup=lambda b: b.klass("A"),
    )


def test_array_field_always_allowed():
    b = ProgramBuilder()
    with b.method("Main", "main", [], static=True) as m:
        m.alloc("x", "java.lang.Object")
        m.array_store("x", "x")
    b.build(entry="Main.main/0")  # no error


def test_non_static_entry_rejected():
    b = ProgramBuilder()
    b.klass("A")
    with b.method("A", "run", []) as m:
        m.ret()
    with pytest.raises(ValidationError, match="must be static"):
        b.build(entry="A.run/0")


def test_all_problems_reported_together():
    b = ProgramBuilder()
    with b.method("Main", "main", [], static=True) as m:
        m.alloc("x", "Ghost1")
        m.alloc("y", "Ghost2")
    with pytest.raises(ValidationError) as exc_info:
        b.build(entry="Main.main/0")
    assert len(exc_info.value.problems) == 2
