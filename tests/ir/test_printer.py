"""Tests for the textual IR printer."""

import pytest

from repro.ir import (
    Alloc,
    Cast,
    Catch,
    ConstString,
    Load,
    Move,
    Return,
    SpecialCall,
    StaticCall,
    StaticLoad,
    StaticStore,
    Store,
    Throw,
    VirtualCall,
    dump_program,
    format_instruction,
)


@pytest.mark.parametrize(
    "instr,expected",
    [
        (Alloc("x", "A"), "x = new A"),
        (Move("x", "y"), "x = y"),
        (Load("x", "b", "f"), "x = b.f"),
        (Store("b", "f", "x"), "b.f = x"),
        (StaticLoad("x", "C", "s"), "x = C::s"),
        (StaticStore("C", "s", "x"), "C::s = x"),
        (Cast("x", "y", "T"), "x = (T) y"),
        (Return("x"), "return x"),
        (Return(None), "return"),
        (Throw("e"), "throw e"),
        (Catch("h", "IOExc"), "catch (IOExc) h"),
        (ConstString("s", "hi"), 's = "hi"'),
        (
            VirtualCall(target="r", args=("a", "b"), base="x", sig="m/2"),
            "r = x.m/2(a, b)",
        ),
        (
            VirtualCall(target=None, args=(), base="x", sig="m/0"),
            "x.m/0()",
        ),
        (
            StaticCall(target="r", args=("a",), class_name="C", sig="m/1"),
            "r = C::m/1(a)",
        ),
        (
            SpecialCall(target=None, args=(), base="x", class_name="C", sig="m/0"),
            "x.<C::m/0>()",
        ),
    ],
)
def test_format_instruction(instr, expected):
    assert format_instruction(instr) == expected


def test_dump_program_structure(tiny_program):
    text = dump_program(tiny_program)
    assert "class A extends java.lang.Object {" in text
    assert "  field f" in text
    assert "class Main" in text
    assert "// entry points: Main.main/0" in text
    assert "r1 = a.id/1(b)" in text


def test_dump_mentions_modifiers(kitchen_sink_program):
    text = dump_program(kitchen_sink_program)
    assert "abstract class Animal" in text
    assert "implements Speaker" in text
    assert "interface" not in text.split("Speaker")[0]  # Speaker has no members
    assert "static field shared" in text


def test_dump_is_deterministic(tiny_program):
    assert dump_program(tiny_program) == dump_program(tiny_program)
