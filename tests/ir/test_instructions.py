"""Tests for instruction dataclasses: def/use sets and immutability."""

import dataclasses

import pytest

from repro.ir import (
    Alloc,
    Cast,
    Load,
    Move,
    Return,
    SpecialCall,
    StaticCall,
    StaticLoad,
    StaticStore,
    Store,
    VirtualCall,
)


@pytest.mark.parametrize(
    "instr,defined,used",
    [
        (Alloc("x", "A"), {"x"}, set()),
        (Move("x", "y"), {"x"}, {"y"}),
        (Load("x", "b", "f"), {"x"}, {"b"}),
        (Store("b", "f", "x"), set(), {"b", "x"}),
        (StaticLoad("x", "C", "s"), {"x"}, set()),
        (StaticStore("C", "s", "x"), set(), {"x"}),
        (Cast("x", "y", "T"), {"x"}, {"y"}),
        (Return("x"), set(), {"x"}),
        (Return(None), set(), set()),
        (
            VirtualCall(target="r", args=("a", "b"), base="x", sig="m/2"),
            {"r"},
            {"x", "a", "b"},
        ),
        (
            VirtualCall(target=None, args=(), base="x", sig="m/0"),
            set(),
            {"x"},
        ),
        (
            StaticCall(target="r", args=("a",), class_name="C", sig="m/1"),
            {"r"},
            {"a"},
        ),
        (
            SpecialCall(target=None, args=("a",), base="x", class_name="C", sig="m/1"),
            set(),
            {"x", "a"},
        ),
    ],
)
def test_def_use(instr, defined, used):
    assert set(instr.defined_vars()) == defined
    assert set(instr.used_vars()) == used


def test_instructions_are_frozen():
    instr = Move("x", "y")
    with pytest.raises(dataclasses.FrozenInstanceError):
        instr.target = "z"


def test_invo_not_part_of_equality():
    a = VirtualCall(target=None, args=(), invo="site1", base="x", sig="m/0")
    b = VirtualCall(target=None, args=(), invo="site2", base="x", sig="m/0")
    assert a == b
