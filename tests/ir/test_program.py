"""Tests for Program: method lookup, site identities, structure queries."""

import pytest

from repro.ir import (
    Alloc,
    ClassType,
    Method,
    Program,
    ProgramError,
    Return,
    VirtualCall,
    signature,
)


def test_signature_format():
    assert signature("run", 0) == "run/0"
    assert signature("apply", 2) == "apply/2"


def make_program():
    p = Program()
    p.add_class(ClassType("A"))
    p.add_class(ClassType("B", superclass="A"))
    p.add_class(ClassType("C", superclass="B"))
    return p


class TestLookup:
    def test_lookup_declared_method(self):
        p = make_program()
        m = p.add_method(Method("A", "run", ()))
        p.add_method(Method("Main", "main", (), is_static=True)) if False else None
        p.freeze()
        assert p.lookup("A", "run/0") is m

    def test_lookup_inherited_method(self):
        p = make_program()
        m = p.add_method(Method("A", "run", ()))
        p.freeze()
        assert p.lookup("C", "run/0") is m

    def test_lookup_override_wins(self):
        p = make_program()
        p.add_method(Method("A", "run", ()))
        override = p.add_method(Method("B", "run", ()))
        p.freeze()
        assert p.lookup("C", "run/0") is override
        assert p.lookup("B", "run/0") is override

    def test_lookup_miss_returns_none(self):
        p = make_program()
        p.freeze()
        assert p.lookup("C", "ghost/0") is None

    def test_lookup_arity_matters(self):
        p = make_program()
        one = p.add_method(Method("A", "run", ("x",)))
        zero = p.add_method(Method("A", "run", ()))
        p.freeze()
        assert p.lookup("A", "run/1") is one
        assert p.lookup("A", "run/0") is zero


class TestMethodIdentity:
    def test_method_id_format(self):
        m = Method("A", "run", ("x", "y"))
        assert m.id == "A.run/2"

    def test_qualified_var(self):
        m = Method("A", "run", ("x",))
        assert m.qualified_var("x") == "A.run/1/x"

    def test_duplicate_method_rejected(self):
        p = make_program()
        p.add_method(Method("A", "run", ()))
        with pytest.raises(ProgramError, match="duplicate"):
            p.add_method(Method("A", "run", ()))

    def test_method_in_unknown_class_rejected(self):
        p = make_program()
        with pytest.raises(ProgramError, match="unknown class"):
            p.add_method(Method("Ghost", "run", ()))

    def test_local_vars_include_params_and_this(self):
        m = Method(
            "A",
            "run",
            ("x",),
            instructions=(Alloc("y", "A"), Return("y")),
        )
        assert m.local_vars() == {"this", "x", "y"}

    def test_static_method_has_no_this(self):
        m = Method("A", "run", (), is_static=True)
        assert m.this_var is None
        assert "this" not in m.local_vars()

    def test_return_vars(self):
        m = Method(
            "A",
            "run",
            (),
            instructions=(Return("a"), Return(None), Return("b")),
        )
        assert set(m.return_vars()) == {"a", "b"}


class TestSiteIdentities:
    def test_alloc_sites_unique_and_stable(self):
        p = make_program()
        m = p.add_method(
            Method("A", "run", (), instructions=(Alloc("x", "A"), Alloc("y", "B")))
        )
        p.add_entry_point(m.id)
        p.freeze()
        assert p.alloc_site(m, 0) == "A.run/0/new A/0"
        assert p.alloc_site(m, 1) == "A.run/0/new B/1"

    def test_invocation_ids_assigned_in_order(self):
        p = make_program()
        m = p.add_method(
            Method(
                "A",
                "run",
                (),
                instructions=(
                    Alloc("a", "A"),
                    VirtualCall(target=None, args=(), base="a", sig="run/0"),
                    VirtualCall(target=None, args=(), base="a", sig="run/0"),
                ),
            )
        )
        p.add_entry_point(m.id)
        p.freeze()
        invos = [i.invo for i in m.instructions if isinstance(i, VirtualCall)]
        assert invos == ["A.run/0/invo/0", "A.run/0/invo/1"]

    def test_full_flow(self, tiny_program):
        invos = [
            i.invo
            for m in tiny_program.methods()
            for i in m.instructions
            if isinstance(i, VirtualCall)
        ]
        assert len(invos) == len(set(invos)) == 2
        assert all(invo.startswith("Main.main/0/invo/") for invo in invos)

    def test_alloc_site_names(self, tiny_program):
        main = tiny_program.method("Main.main/0")
        assert tiny_program.alloc_site(main, 0) == "Main.main/0/new A/0"
        assert tiny_program.alloc_site(main, 1) == "Main.main/0/new B/1"


class TestStructureQueries:
    def test_counts(self, tiny_program):
        assert tiny_program.count_methods() == 3
        assert tiny_program.count_classes() == 5  # Object, String, A, B, Main
        assert tiny_program.count_call_sites() == 2
        assert tiny_program.count_alloc_sites() == 3
        assert tiny_program.count_instructions() == 10

    def test_summary_mentions_counts(self, tiny_program):
        s = tiny_program.summary()
        assert "methods=3" in s and "classes=5" in s

    def test_unknown_entry_point_rejected(self):
        p = make_program()
        p.add_entry_point("Ghost.main/0")
        with pytest.raises(ProgramError, match="entry point"):
            p.freeze()

    def test_declared_field_walks_hierarchy(self, tiny_program):
        assert tiny_program.declared_field("B", "f")  # inherited from A
        assert not tiny_program.declared_field("B", "ghost")
