"""Tests for the type hierarchy: subtyping, validation, dispatch order."""

import pytest

from repro.ir.types import OBJECT, ClassType, TypeError_, TypeHierarchy


def make_hierarchy(*types: ClassType) -> TypeHierarchy:
    h = TypeHierarchy()
    for t in types:
        h.add(t)
    h.freeze()
    return h


class TestConstruction:
    def test_root_exists_by_default(self):
        h = TypeHierarchy()
        assert OBJECT in h
        assert h[OBJECT].superclass is None

    def test_duplicate_type_rejected(self):
        h = TypeHierarchy()
        h.add(ClassType("A"))
        with pytest.raises(TypeError_, match="duplicate"):
            h.add(ClassType("A"))

    def test_self_superclass_rejected(self):
        with pytest.raises(TypeError_, match="own superclass"):
            ClassType("A", superclass="A")

    def test_unknown_superclass_rejected_at_freeze(self):
        h = TypeHierarchy()
        h.add(ClassType("A", superclass="Ghost"))
        with pytest.raises(TypeError_, match="unknown supertype"):
            h.freeze()

    def test_unknown_interface_rejected_at_freeze(self):
        h = TypeHierarchy()
        h.add(ClassType("A", interfaces=("Ghost",)))
        with pytest.raises(TypeError_, match="unknown supertype"):
            h.freeze()

    def test_inheritance_cycle_detected(self):
        h = TypeHierarchy()
        h.add(ClassType("A", superclass="B"))
        h.add(ClassType("B", superclass="A"))
        with pytest.raises(TypeError_, match="cycle"):
            h.freeze()

    def test_interface_cycle_detected(self):
        h = TypeHierarchy()
        h.add(ClassType("I", interfaces=("J",), is_interface=True))
        h.add(ClassType("J", interfaces=("I",), is_interface=True))
        with pytest.raises(TypeError_, match="cycle"):
            h.freeze()

    def test_add_after_freeze_rejected(self):
        h = TypeHierarchy()
        h.freeze()
        with pytest.raises(TypeError_, match="frozen"):
            h.add(ClassType("A"))

    def test_freeze_is_idempotent(self):
        h = TypeHierarchy()
        h.freeze()
        h.freeze()
        assert h.frozen

    def test_query_before_freeze_rejected(self):
        h = TypeHierarchy()
        h.add(ClassType("A"))
        with pytest.raises(TypeError_, match="frozen"):
            h.is_subtype("A", OBJECT)


class TestSubtyping:
    def test_reflexive(self):
        h = make_hierarchy(ClassType("A"))
        assert h.is_subtype("A", "A")

    def test_direct_superclass(self):
        h = make_hierarchy(ClassType("A"), ClassType("B", superclass="A"))
        assert h.is_subtype("B", "A")
        assert not h.is_subtype("A", "B")

    def test_transitive_chain(self):
        h = make_hierarchy(
            ClassType("A"),
            ClassType("B", superclass="A"),
            ClassType("C", superclass="B"),
        )
        assert h.is_subtype("C", "A")
        assert h.is_subtype("C", OBJECT)

    def test_interfaces_contribute_to_subtyping(self):
        h = make_hierarchy(
            ClassType("I", is_interface=True),
            ClassType("A", interfaces=("I",)),
        )
        assert h.is_subtype("A", "I")
        assert not h.is_subtype("I", "A")

    def test_interface_inheritance(self):
        h = make_hierarchy(
            ClassType("I", is_interface=True),
            ClassType("J", interfaces=("I",), is_interface=True),
            ClassType("A", interfaces=("J",)),
        )
        assert h.is_subtype("A", "I")

    def test_siblings_unrelated(self):
        h = make_hierarchy(
            ClassType("A"),
            ClassType("B", superclass="A"),
            ClassType("C", superclass="A"),
        )
        assert not h.is_subtype("B", "C")
        assert not h.is_subtype("C", "B")

    def test_everything_subtypes_object(self):
        h = make_hierarchy(
            ClassType("I", is_interface=True), ClassType("A", interfaces=("I",))
        )
        for name in ("I", "A", OBJECT, "java.lang.String"):
            assert h.is_subtype(name, OBJECT)

    def test_unknown_type_raises(self):
        h = make_hierarchy(ClassType("A"))
        with pytest.raises(TypeError_, match="unknown type"):
            h.is_subtype("Ghost", "A")

    def test_supertypes_include_self(self):
        h = make_hierarchy(ClassType("A"), ClassType("B", superclass="A"))
        assert h.supertypes("B") == {"B", "A", OBJECT}

    def test_subtypes_include_self(self):
        h = make_hierarchy(ClassType("A"), ClassType("B", superclass="A"))
        assert h.subtypes("A") == {"A", "B"}
        assert h.subtypes(OBJECT) == {OBJECT, "java.lang.String", "A", "B"}


class TestSuperclassChain:
    def test_chain_order_is_dispatch_order(self):
        h = make_hierarchy(
            ClassType("A"),
            ClassType("B", superclass="A"),
            ClassType("C", superclass="B"),
        )
        assert [t.name for t in h.superclass_chain("C")] == ["C", "B", "A", OBJECT]

    def test_chain_skips_interfaces(self):
        h = make_hierarchy(
            ClassType("I", is_interface=True),
            ClassType("A", interfaces=("I",)),
        )
        assert [t.name for t in h.superclass_chain("A")] == ["A", OBJECT]

    def test_len_and_iter(self):
        h = make_hierarchy(ClassType("A"))
        assert len(h) == 3  # A + the implicit Object and String
        assert {t.name for t in h} == {"A", OBJECT, "java.lang.String"}
