"""Tests for shared utilities: interning, the stopwatch, atomic writes."""

import time

from hypothesis import given
from hypothesis import strategies as st

from repro.utils import Interner, Stopwatch, atomic_write_text


class TestInterner:
    def test_intern_assigns_dense_ids(self):
        interner = Interner()
        ids = [interner.intern(v) for v in ("a", "b", "c", "a")]
        assert ids == [0, 1, 2, 0]
        assert len(interner) == 3

    def test_value_roundtrip(self):
        interner = Interner()
        idx = interner.intern(("tuple", 1))
        assert interner.value(idx) == ("tuple", 1)

    def test_get_requires_known_value(self):
        interner = Interner()
        interner.intern("known")
        assert interner.get("known") == 0
        try:
            interner.get("unknown")
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")

    def test_contains(self):
        interner = Interner()
        interner.intern("x")
        assert "x" in interner
        assert "y" not in interner

    def test_values_in_insertion_order(self):
        interner = Interner()
        for v in ("c", "a", "b"):
            interner.intern(v)
        assert interner.values() == ["c", "a", "b"]

    @given(st.lists(st.text(max_size=8), max_size=60))
    def test_roundtrip_property(self, values):
        interner = Interner()
        ids = [interner.intern(v) for v in values]
        for v, idx in zip(values, ids):
            assert interner.value(idx) == v
            assert interner.intern(v) == idx
        assert len(interner) == len(set(values))


class TestStopwatch:
    def test_elapsed_monotonic(self):
        watch = Stopwatch()
        first = watch.elapsed()
        time.sleep(0.01)
        second = watch.elapsed()
        assert 0 <= first <= second

    def test_restart(self):
        watch = Stopwatch()
        time.sleep(0.01)
        watch.restart()
        assert watch.elapsed() < 0.01


class TestAtomicWriteText:
    def test_writes_and_overwrites(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "one\n")
        assert path.read_text() == "one\n"
        atomic_write_text(str(path), "two\n")
        assert path.read_text() == "two\n"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_write_cleans_its_temp_file(self, tmp_path, monkeypatch):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "old")

        def boom(_fd):
            raise OSError("disk full")

        monkeypatch.setattr("repro.utils.os.fsync", boom)
        try:
            atomic_write_text(str(path), "new")
        except OSError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected OSError")
        assert path.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]
