"""The content-addressed fact-base digest (the service's cache key)."""

from __future__ import annotations

import random

import pytest

from repro import encode_program
from repro.frontend import parse_source
from tests.conftest import build_box_program, build_tiny_program

SOURCE = """
class Box {
    field v;
    method set(x) { this.v = x; }
    method get()  { r = this.v; return r; }
}
class Main {
    static method main() {
        b = new Box();
        i = new Box();
        b.set(i);
        g = b.get();
    }
}
"""


class TestDigestStability:
    def test_hex_sha256_shape(self):
        digest = encode_program(build_tiny_program()).digest()
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_deterministic_across_encodings(self):
        program = build_tiny_program()
        assert encode_program(program).digest() == encode_program(program).digest()

    def test_deterministic_across_parses(self):
        a = encode_program(parse_source(SOURCE)).digest()
        b = encode_program(parse_source(SOURCE)).digest()
        assert a == b

    def test_invariant_under_insertion_order(self):
        """Shuffling every relation's tuple list leaves the digest alone."""
        facts = encode_program(build_tiny_program())
        before = facts.digest()
        rng = random.Random(7)
        for name in (
            "alloc", "move", "load", "store", "vcall", "scall",
            "formalarg", "actualarg", "subtype", "lookup", "varinmeth",
        ):
            rng.shuffle(getattr(facts, name))
        assert facts.digest() == before


class TestDigestSensitivity:
    def test_changes_when_a_tuple_changes(self):
        facts = encode_program(build_tiny_program())
        before = facts.digest()
        var, heap, meth = facts.alloc[0]
        facts.alloc[0] = (var, heap + "'", meth)
        assert facts.digest() != before

    def test_changes_when_a_tuple_is_added(self):
        facts = encode_program(build_tiny_program())
        before = facts.digest()
        facts.move.append(("Main.main/0/x", "Main.main/0/y"))
        assert facts.digest() != before

    def test_changes_when_a_tuple_is_removed(self):
        facts = encode_program(build_tiny_program())
        before = facts.digest()
        facts.subtype.pop()
        assert facts.digest() != before

    def test_different_programs_differ(self):
        tiny = encode_program(build_tiny_program()).digest()
        boxes = encode_program(build_box_program()).digest()
        assert tiny != boxes

    @pytest.mark.parametrize("boxes", [2, 3])
    def test_program_size_matters(self, boxes):
        small = encode_program(build_box_program(boxes)).digest()
        larger = encode_program(build_box_program(boxes + 1)).digest()
        assert small != larger
