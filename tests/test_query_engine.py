"""Tests for the demand-driven query engine (`repro.query`).

The headline property is *per-flavor exactness*: a sliced demand query
returns exactly the whole-program projection of the queried variable —
for every supported flavor, exceptions included — while touching only a
slice of the fact base.  On top of that sit the memoization contracts
(repeat queries and repeat batches solve nothing) and the budget
contracts (same ``BudgetExceeded`` as the whole-program path; a blown
batch member cannot starve its siblings or poison the memo).
"""

import pytest

from repro import ProgramBuilder, analyze, encode_program
from repro.analysis import BudgetExceeded
from repro.introspection import HeuristicA, HeuristicB, run_introspective
from repro.query import (
    QUERY_FLAVORS,
    QueryEngine,
    QueryPlanner,
    SLICED_RELATIONS,
)
from tests.conftest import (
    build_box_program,
    build_kitchen_sink_program,
    build_tiny_program,
)


def build_throwing_program():
    """Cross-method exception flow: the heap reaching ``h`` travels a
    throw -> (transitive call) -> catch path the slice must keep."""
    b = ProgramBuilder()
    b.klass("Exc")
    b.klass("Other")
    with b.method("Lib", "boom", [], static=True) as m:
        m.alloc("e", "Exc")
        m.throw("e")
    with b.method("Lib", "mid", [], static=True) as m:
        m.scall("Lib", "boom", [])
    with b.method("Main", "main", [], static=True) as m:
        m.scall("Lib", "mid", [])
        m.catch("h", "Exc")
        m.alloc("o", "Other")
        m.move("copy", "h")
    return b.build(entry="Main.main/0")


def whole_program_result(program, facts, flavor):
    """The comparator the engine must reproduce, per flavor."""
    if flavor.startswith("introspective-"):
        heuristic = {"A": HeuristicA, "B": HeuristicB}[flavor[-1]]()
        return run_introspective(program, "2objH", heuristic, facts=facts).result
    return analyze(program, flavor, facts=facts)


@pytest.mark.parametrize(
    "builder",
    [
        build_tiny_program,
        build_box_program,
        build_kitchen_sink_program,
        build_throwing_program,
    ],
    ids=["tiny", "boxes", "kitchen-sink", "throwing"],
)
@pytest.mark.parametrize("flavor", QUERY_FLAVORS)
def test_query_equals_whole_program_per_flavor(builder, flavor):
    """Every variable's query answer equals the whole-program projection
    — the acceptance contract, asserted for every supported flavor."""
    program = builder()
    facts = encode_program(program)
    engine = QueryEngine(program, facts=facts)
    whole = whole_program_result(program, facts, flavor)
    variables = sorted({var for var, _meth in facts.varinmeth})
    outcomes = engine.query_batch(variables, flavor)
    assert [o.var for o in outcomes] == variables
    for outcome in outcomes:
        assert outcome.error is None, outcome.var
        assert outcome.answer.points_to == frozenset(
            whole.points_to(outcome.var)
        ), (outcome.var, flavor)


def test_slice_is_a_real_slice():
    """Querying one box group's result must not drag in the hub code."""
    from repro.benchgen import BenchmarkSpec, HubSpec, generate

    spec = BenchmarkSpec(
        name="slice",
        util_classes=10,
        util_methods_per_class=6,
        strategy_clusters=(4,),
        box_groups=(4,),
        sink_groups=(),
        hubs=(HubSpec(readers=10, elements=10, chain=4),),
    )
    program = generate(spec)
    facts = encode_program(program)
    engine = QueryEngine(program, facts=facts)
    whole = analyze(program, "2objH", facts=facts)
    answer = engine.query("BoxDriver0.drive/0/g0", "2objH")
    assert answer.points_to == frozenset(
        whole.points_to("BoxDriver0.drive/0/g0")
    )
    assert 0.0 < answer.footprint < 0.25
    assert answer.slice_variables < len(facts.varinmeth) / 4


class TestMemoization:
    def test_repeat_query_is_memoized_and_solves_nothing(self):
        program = build_box_program()
        engine = QueryEngine(program)
        first = engine.query("Main.main/0/g1", "2objH")
        assert first.memoized is False
        solves = engine.solves
        again = engine.query("Main.main/0/g1", "2objH")
        assert again is first  # answer-memo hit, verbatim
        assert engine.solves == solves

    def test_identical_slice_signature_shares_one_solve(self):
        """Two variables whose closures coincide must share a fixpoint."""
        program = build_box_program()
        engine = QueryEngine(program)
        a = engine.plan("Main.main/0/g1")
        b = engine.plan("Box.get/0/r")  # g1's producer: same closure
        if a.signature == b.signature:
            engine.query("Main.main/0/g1", "2objH")
            solves = engine.solves
            answer = engine.query("Box.get/0/r", "2objH")
            assert engine.solves == solves
            assert answer.memoized is True

    def test_repeat_batch_runs_zero_new_solves(self):
        program = build_box_program()
        engine = QueryEngine(program)
        variables = ["Main.main/0/g0", "Main.main/0/g1", "Main.main/0/g2"]
        engine.query_batch(variables, "2typeH")
        solves = engine.solves
        outcomes = engine.query_batch(variables, "2typeH")
        assert engine.solves == solves
        assert all(o.answer is not None for o in outcomes)

    def test_batch_union_seeds_individual_plans(self):
        """After a batch, each member's solo query hits the slice memo."""
        program = build_box_program()
        engine = QueryEngine(program)
        variables = ["Main.main/0/g0", "Main.main/0/g2"]
        engine.query_batch(variables, "2objH")
        solves = engine.solves
        for var in variables:
            engine._answer_memo.clear()  # force the slice-memo path
            answer = engine.query(var, "2objH")
            assert answer.memoized is True
        assert engine.solves == solves

    def test_flavors_do_not_share_memo_entries(self):
        program = build_tiny_program()
        engine = QueryEngine(program)
        engine.query("Main.main/0/r1", "insens")
        solves = engine.solves
        engine.query("Main.main/0/r1", "2objH")
        assert engine.solves == solves + 1

    def test_clear_memos_keeps_plans_warm(self):
        program = build_tiny_program()
        engine = QueryEngine(program)
        engine.query("Main.main/0/r1", "2objH")
        assert engine.memo_entries > 0 and engine.answered > 0
        plans = dict(engine._plans)
        engine.clear_memos()
        assert engine.memo_entries == 0 and engine.answered == 0
        assert engine._plans == plans


class TestBudgets:
    def test_budget_trip_matches_whole_program_exception(self):
        """A starved query raises the very same exception type with the
        same fields (`reason`/`tuples`/`seconds`) as a whole-program
        budget trip — clients need not special-case the demand path."""
        program = build_box_program()
        facts = encode_program(program)
        with pytest.raises(BudgetExceeded) as whole_exc:
            analyze(program, "2objH", facts=facts, max_tuples=1)
        engine = QueryEngine(program, facts=facts)
        with pytest.raises(BudgetExceeded) as query_exc:
            engine.query("Main.main/0/g1", "2objH", max_tuples=1)
        assert query_exc.value.reason == whole_exc.value.reason
        assert query_exc.value.tuples > 1
        assert query_exc.value.seconds >= 0.0

    def test_failed_solve_never_populates_memo(self):
        program = build_box_program()
        engine = QueryEngine(program)
        with pytest.raises(BudgetExceeded):
            engine.query("Main.main/0/g1", "2objH", max_tuples=1)
        assert engine.memo_entries == 0
        assert engine.answered == 0
        # A retry with room succeeds: no partial result was cached.
        whole = analyze(program, "2objH", facts=engine.facts)
        answer = engine.query("Main.main/0/g1", "2objH")
        assert answer.points_to == frozenset(
            whole.points_to("Main.main/0/g1")
        )

    def test_blown_batch_member_cannot_starve_siblings(self):
        """A budget the union-solve blows but each solo slice fits must
        still answer every variable (fallback to per-variable solves).

        Needs two near-disjoint slices so the union genuinely costs more
        than the dearest member — a box group and a hub qualify."""
        from repro.benchgen import BenchmarkSpec, HubSpec, generate

        spec = BenchmarkSpec(
            name="slice",
            util_classes=10,
            util_methods_per_class=6,
            strategy_clusters=(4,),
            box_groups=(4,),
            sink_groups=(),
            hubs=(HubSpec(readers=10, elements=10, chain=4),),
        )
        program = generate(spec)
        facts = encode_program(program)
        variables = ["BoxDriver0.drive/0/g0", "Hub0.fetch/0/r"]
        # Find a budget between the largest solo slice and the union.
        probe = QueryEngine(program, facts=facts)
        solo_costs = []
        for var in variables:
            probe.clear_memos()
            sliced = probe.plan(var).sliced_facts(program, facts)
            result = analyze(program, probe.policy("insens"), facts=sliced)
            solo_costs.append(result.stats().tuple_count)
        union_plan = probe.planner.plan(variables)
        union_cost = analyze(
            program,
            probe.policy("insens"),
            facts=union_plan.sliced_facts(program, facts),
        ).stats().tuple_count
        budget = (max(solo_costs) + union_cost) // 2
        if not max(solo_costs) < budget < union_cost:
            pytest.skip("fixture slices too uniform to wedge a budget")
        engine = QueryEngine(program, facts=facts)
        outcomes = engine.query_batch(variables, "insens", max_tuples=budget)
        whole = analyze(program, "insens", facts=facts)
        for outcome in outcomes:
            assert outcome.error is None, outcome.var
            assert outcome.answer.points_to == frozenset(
                whole.points_to(outcome.var)
            )

    def test_batch_reports_error_slots_in_order(self):
        program = build_box_program()
        engine = QueryEngine(program)
        variables = ["Main.main/0/g0", "Main.main/0/g1"]
        outcomes = engine.query_batch(variables, "2objH", max_tuples=1)
        assert [o.var for o in outcomes] == variables
        for outcome in outcomes:
            assert outcome.answer is None
            assert outcome.error is not None
            payload = outcome.to_json()
            assert set(payload["error"]) == {"reason", "tuples", "seconds"}
        # The failures poisoned nothing: a roomy repeat answers clean.
        outcomes = engine.query_batch(variables, "2objH")
        assert all(o.error is None for o in outcomes)


class TestPlanner:
    def test_plan_signature_is_deterministic(self):
        program = build_kitchen_sink_program()
        facts = encode_program(program)
        insens = analyze(program, "insens", facts=facts)
        a = QueryPlanner(program, facts, insens.call_graph).plan(
            ["Main.main/0/g"]
        )
        b = QueryPlanner(program, facts, insens.call_graph).plan(
            ["Main.main/0/g"]
        )
        assert a.signature == b.signature
        assert a.kept_tuples == b.kept_tuples

    def test_sliced_facts_only_shrink_sliced_relations(self):
        program = build_kitchen_sink_program()
        facts = encode_program(program)
        engine = QueryEngine(program, facts=facts)
        plan = engine.plan("Main.main/0/g")
        sliced = plan.sliced_facts(program, facts)
        for relation in SLICED_RELATIONS:
            assert len(getattr(sliced, relation)) <= len(
                getattr(facts, relation)
            ), relation
        # Auxiliary relations are shared by reference, not copied.
        assert sliced.subtype is facts.subtype

    def test_unknown_variable_answers_empty(self):
        """The planner's documented contract: an unknown variable plans
        an empty slice and answers the empty set, it does not raise."""
        program = build_tiny_program()
        engine = QueryEngine(program)
        answer = engine.query("Main.main/0/nope")
        assert answer.points_to == frozenset()
        assert answer.slice_tuples == 0

    def test_unknown_flavor_is_rejected(self):
        program = build_tiny_program()
        engine = QueryEngine(program)
        with pytest.raises(ValueError):
            engine.policy("introspective-C")


def test_answer_json_round_trip_fields():
    program = build_tiny_program()
    engine = QueryEngine(program)
    payload = engine.query("Main.main/0/r1", "2objH").to_json()
    assert set(payload) == {
        "var",
        "flavor",
        "points_to",
        "slice_variables",
        "slice_methods",
        "slice_tuples",
        "footprint",
        "seconds",
        "memoized",
    }
    assert payload["points_to"] == sorted(payload["points_to"])
