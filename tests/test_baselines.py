"""Tests for the pruning baseline: relevance, pruning, and the
query-answer equivalence with the whole-program precise analysis."""

import pytest

from repro import analyze, encode_program
from repro.baselines import (
    build_pruned_program,
    keep_set,
    prune_and_analyze,
    relevant_variables,
)
from repro.clients.precision import casts_that_may_fail
from tests.conftest import build_box_program


@pytest.fixture(scope="module")
def setup():
    program = build_box_program(boxes=4)
    facts = encode_program(program)
    insens = analyze(program, "insens", facts=facts)
    return program, facts, insens


class TestRelevance:
    def test_focus_var_is_relevant(self, setup):
        _, facts, insens = setup
        relevant = relevant_variables(facts, insens, {"Main.main/0/g0"})
        assert "Main.main/0/g0" in relevant

    def test_backward_flow_through_calls_and_fields(self, setup):
        _, facts, insens = setup
        relevant = relevant_variables(facts, insens, {"Main.main/0/g0"})
        # g0 = box0.get(); get returns this.v; v was stored from set(x);
        # x came from item allocations in main.
        assert "Box.get/0/r" in relevant
        assert "Box.set/1/x" in relevant
        assert "Main.main/0/item0" in relevant
        # all boxes alias through the shared Box class insensitively, so
        # every item may be relevant -- over-keeping is the safe direction
        assert "Main.main/0/item1" in relevant

    def test_unrelated_method_not_kept(self):
        from repro import ProgramBuilder

        b = ProgramBuilder()
        with b.method("Island", "alone", [], static=True) as m:
            m.alloc("x", "java.lang.Object")
        with b.method("Used", "id", ["p"], static=True) as m:
            m.ret("p")
        with b.method("Main", "main", [], static=True) as m:
            m.alloc("a", "java.lang.Object")
            m.scall("Used", "id", ["a"], target="r")
            m.scall("Island", "alone", [])
        program = b.build(entry="Main.main/0")
        facts = encode_program(program)
        insens = analyze(program, "insens", facts=facts)
        keep = keep_set(facts, insens, {"Main.main/0/r"})
        assert "Used.id/1" in keep
        assert "Main.main/0" in keep
        assert "Island.alone/0" not in keep


class TestPrunedProgram:
    def test_pruned_bodies_emptied(self, setup):
        program, facts, insens = setup
        keep = {"Main.main/0"}
        pruned = build_pruned_program(program, keep)
        assert pruned.count_methods() == program.count_methods()
        assert len(pruned.method("Main.main/0").instructions) > 0
        assert len(pruned.method("Box.get/0").instructions) == 0

    def test_hierarchy_preserved(self, setup):
        program, _, _ = setup
        pruned = build_pruned_program(program, set())
        assert pruned.hierarchy.is_subtype("Item0", "Item")

    def test_entry_points_preserved(self, setup):
        program, _, _ = setup
        pruned = build_pruned_program(program, set())
        assert pruned.entry_points == program.entry_points


class TestEndToEnd:
    def test_query_answer_matches_whole_program(self, setup):
        """On a single-cast query, the pruned precise analysis gives the
        same verdict as the whole-program precise analysis."""
        program, facts, insens = setup
        outcome = prune_and_analyze(
            program, {"Main.main/0/g0"}, analysis="2objH",
            facts=facts, insens=insens,
        )
        assert not outcome.timed_out
        # verdict on the queried cast: same points-to set in both
        full = analyze(program, "2objH", facts=facts)
        assert "Main.main/0/c0" not in casts_that_may_fail(full, facts)
        assert outcome.result.points_to("Main.main/0/g0") == full.points_to(
            "Main.main/0/g0"
        )

    def test_summary(self, setup):
        program, facts, insens = setup
        outcome = prune_and_analyze(
            program, {"Main.main/0/g0"}, facts=facts, insens=insens
        )
        assert "methods" in outcome.summary()
        assert 0 < outcome.kept_fraction <= 1
